#include "compiler/simulator.h"

#include <deque>
#include <queue>
#include <tuple>
#include <unordered_map>

#include "compiler/rule_cost.h"
#include "ocl/device.h"
#include "support/error.h"
#include "support/region_set.h"

namespace petabricks {
namespace compiler {

namespace {

using sim::SimResource;
using sim::SimTaskId;

/**
 * The pre-fast-path discrete-event scheduler, kept verbatim as part of
 * the reference path's executable spec: per-task record objects with
 * dependent lists and labels, std:: containers allocated per run. The
 * production sim::ScheduleSimulator computes the identical schedule
 * (its running-task heap key is the same total order) with
 * struct-of-arrays storage and reusable buffers; the throughput bench
 * measures the fast path against *this* baseline so the reported
 * speedup reflects the full pre-PR evaluation cost, and the
 * golden-equality suite pins the two implementations together.
 */
class ReferenceScheduler
{
  public:
    explicit ReferenceScheduler(const sim::MachineProfile &machine)
        : cpuWorkers_(machine.workerThreads),
          oclSharesCpu_(machine.oclSharesCpu)
    {
        PB_ASSERT(cpuWorkers_ > 0, "need at least one CPU worker");
    }

    SimTaskId
    addTask(SimResource resource, double seconds,
            const std::vector<SimTaskId> &deps = {},
            std::string label = "")
    {
        PB_ASSERT(!ran_, "cannot add tasks after run()");
        PB_ASSERT(seconds >= 0.0, "negative task duration");
        SimTaskId id = static_cast<SimTaskId>(tasks_.size());
        TaskRecord rec;
        rec.resource = resource;
        rec.seconds = seconds;
        rec.remainingDeps = 0;
        rec.label = std::move(label);
        for (SimTaskId dep : deps) {
            PB_ASSERT(dep >= 0 && dep < id,
                      "dependency " << dep << " out of range");
            tasks_[static_cast<size_t>(dep)].dependents.push_back(id);
            ++rec.remainingDeps;
        }
        tasks_.push_back(std::move(rec));
        return id;
    }

    double
    run()
    {
        PB_ASSERT(!ran_, "simulator is single-shot");
        ran_ = true;

        std::deque<SimTaskId> cpuReady;
        std::deque<SimTaskId> gpuReady;
        std::deque<SimTaskId> xferReady;

        int cpuInUse = 0;
        bool gpuBusy = false;
        bool xferBusy = false;

        using Running = std::tuple<double, int64_t, SimTaskId>;
        std::priority_queue<Running, std::vector<Running>,
                            std::greater<>>
            heap;
        int64_t seq = 0;
        double now = 0.0;
        double makespan = 0.0;
        size_t completed = 0;

        auto needsFullPool = [&](SimTaskId id) {
            SimResource r = tasks_[static_cast<size_t>(id)].resource;
            return r == SimResource::CpuPool ||
                   (oclSharesCpu_ && r == SimResource::GpuQueue);
        };

        auto release = [&](SimTaskId id) {
            switch (tasks_[static_cast<size_t>(id)].resource) {
              case SimResource::CpuWorker:
              case SimResource::CpuPool:
                cpuReady.push_back(id);
                break;
              case SimResource::GpuQueue:
                if (oclSharesCpu_)
                    cpuReady.push_back(id);
                else
                    gpuReady.push_back(id);
                break;
              case SimResource::Transfer:
                xferReady.push_back(id);
                break;
              case SimResource::None:
                heap.emplace(now, seq++, id);
                break;
            }
        };

        auto start = [&](SimTaskId id) {
            TaskRecord &rec = tasks_[static_cast<size_t>(id)];
            double dur = rec.seconds;
            heap.emplace(now + dur, seq++, id);
            if (rec.resource == SimResource::GpuQueue)
                gpuBusy_ += dur;
            if (needsFullPool(id))
                cpuBusy_ += dur * cpuWorkers_;
            else if (rec.resource == SimResource::CpuWorker)
                cpuBusy_ += dur;
        };

        auto dispatch = [&]() {
            while (!cpuReady.empty()) {
                SimTaskId head = cpuReady.front();
                if (needsFullPool(head)) {
                    bool gpuSide =
                        tasks_[static_cast<size_t>(head)].resource ==
                        SimResource::GpuQueue;
                    if (cpuInUse != 0 || (gpuSide && gpuBusy))
                        break;
                    cpuInUse = cpuWorkers_;
                    if (gpuSide)
                        gpuBusy = true;
                } else {
                    if (cpuInUse >= cpuWorkers_)
                        break;
                    ++cpuInUse;
                }
                cpuReady.pop_front();
                start(head);
            }
            if (!gpuBusy && !gpuReady.empty()) {
                SimTaskId head = gpuReady.front();
                gpuReady.pop_front();
                gpuBusy = true;
                start(head);
            }
            if (!xferBusy && !xferReady.empty()) {
                SimTaskId head = xferReady.front();
                xferReady.pop_front();
                xferBusy = true;
                start(head);
            }
        };

        for (SimTaskId id = 0;
             id < static_cast<SimTaskId>(tasks_.size()); ++id)
            if (tasks_[static_cast<size_t>(id)].remainingDeps == 0)
                release(id);
        dispatch();

        while (!heap.empty()) {
            auto [finish, order, id] = heap.top();
            heap.pop();
            (void)order;
            now = finish;
            makespan = std::max(makespan, now);
            TaskRecord &rec = tasks_[static_cast<size_t>(id)];
            rec.finish = now;
            ++completed;

            switch (rec.resource) {
              case SimResource::CpuWorker:
                --cpuInUse;
                break;
              case SimResource::CpuPool:
                cpuInUse = 0;
                break;
              case SimResource::GpuQueue:
                gpuBusy = false;
                if (oclSharesCpu_)
                    cpuInUse = 0;
                break;
              case SimResource::Transfer:
                xferBusy = false;
                break;
              case SimResource::None:
                break;
            }

            for (SimTaskId dep : rec.dependents) {
                if (--tasks_[static_cast<size_t>(dep)].remainingDeps ==
                    0)
                    release(dep);
            }
            dispatch();
        }

        if (completed != tasks_.size())
            PB_PANIC("schedule deadlocked: "
                     << completed << "/" << tasks_.size()
                     << " tasks completed (cycle in DAG?)");
        return makespan;
    }

    double cpuBusySeconds() const { return cpuBusy_; }
    double gpuBusySeconds() const { return gpuBusy_; }

  private:
    struct TaskRecord
    {
        SimResource resource;
        double seconds;
        std::vector<SimTaskId> dependents;
        int remainingDeps;
        double finish = -1.0;
        std::string label;
    };

    int cpuWorkers_;
    bool oclSharesCpu_;
    std::vector<TaskRecord> tasks_;
    double cpuBusy_ = 0.0;
    double gpuBusy_ = 0.0;
    bool ran_ = false;
};

/** Modeled device residency for copy-in deduplication. */
class ResidencyModel
{
  public:
    /** Bytes that actually need transferring to make @p region valid. */
    double
    bytesToCopyIn(const std::string &slot, const Region &region)
    {
        std::vector<Region> uncovered{region};
        for (const Region &valid : valid_[slot]) {
            std::vector<Region> next;
            for (const Region &hole : uncovered)
                for (const Region &part : subtractRegion(hole, valid))
                    next.push_back(part);
            uncovered.swap(next);
            if (uncovered.empty())
                break;
        }
        double bytes = 0.0;
        for (const Region &part : uncovered)
            bytes += static_cast<double>(part.area()) * kElemBytes;
        if (!uncovered.empty())
            valid_[slot].push_back(region);
        return bytes;
    }

    void
    markWritten(const std::string &slot, const Region &region)
    {
        valid_[slot].push_back(region);
        stale_[slot].push_back(region);
    }

    void
    markCopiedOut(const std::string &slot, const Region &region)
    {
        std::vector<Region> still;
        for (const Region &s : stale_[slot])
            for (const Region &part : subtractRegion(s, region))
                still.push_back(part);
        stale_[slot] = std::move(still);
    }

    /** Device-fresh bytes of @p slot never copied back. */
    double
    staleBytes(const std::string &slot) const
    {
        auto it = stale_.find(slot);
        if (it == stale_.end())
            return 0.0;
        double bytes = 0.0;
        for (const Region &s : it->second)
            bytes += static_cast<double>(s.area()) * kElemBytes;
        return bytes;
    }

    const std::vector<Region> &
    staleRegions(const std::string &slot)
    {
        return stale_[slot];
    }

  private:
    std::map<std::string, std::vector<Region>> valid_;
    std::map<std::string, std::vector<Region>> stale_;
};

/** Split @p region into up to @p parts row bands (mirrors executor),
 * into a reused buffer (the fast path's variant). */
void
rowChunksInto(const Region &region, int parts, std::vector<Region> &out)
{
    out.clear();
    if (region.empty())
        return;
    int64_t n = std::min<int64_t>(parts, region.h);
    for (int64_t i = 0; i < n; ++i) {
        int64_t y0 = region.y + region.h * i / n;
        int64_t y1 = region.y + region.h * (i + 1) / n;
        if (y1 > y0)
            out.emplace_back(region.x, y0, region.w, y1 - y0);
    }
}

/** rowChunksInto() returning a fresh vector (the reference path). */
std::vector<Region>
rowChunks(const Region &region, int parts)
{
    std::vector<Region> chunks;
    rowChunksInto(region, parts, chunks);
    return chunks;
}

// ---- Fast-path scratch -------------------------------------------------

/** Config-dependent per-stage state (the fast path's StagePlan). */
struct StageDyn
{
    StageConfig config;
    int64_t gpuRows = 0;
    CopyOutPolicy copyOut = CopyOutPolicy::None;
};

/**
 * Interned residency model, indexed by slot id instead of slot-name
 * maps, with buffers reused across calls.
 *
 * The copy-in (`valid`) side is a coalescing RegionSet: uncovered-area
 * queries are exact set algebra regardless of representation, so
 * coalescing only keeps the subtract lists small. The stale side
 * deliberately stays an append list manipulated exactly like
 * ResidencyModel's — including summing raw piece areas in staleBytes()
 * — so the fast path is bit-identical to the reference even for
 * hypothetical transforms that write a slot's region twice (where a
 * union-exact representation would diverge from the reference's
 * double-counting).
 */
struct FastResidency
{
    std::vector<RegionSet> valid;
    std::vector<std::vector<Region>> stale;
    std::vector<Region> staleScratch;

    void
    reset(size_t slotCount)
    {
        if (valid.size() < slotCount) {
            valid.resize(slotCount);
            stale.resize(slotCount);
        }
        for (size_t i = 0; i < slotCount; ++i) {
            valid[i].clear();
            stale[i].clear();
        }
    }

    double
    bytesToCopyIn(int slot, const Region &region)
    {
        RegionSet &set = valid[static_cast<size_t>(slot)];
        int64_t area = set.uncoveredArea(region);
        if (area == 0)
            return 0.0;
        set.insert(region);
        return static_cast<double>(area) * kElemBytes;
    }

    void
    markWritten(int slot, const Region &region)
    {
        valid[static_cast<size_t>(slot)].insert(region);
        stale[static_cast<size_t>(slot)].push_back(region);
    }

    void
    markCopiedOut(int slot, const Region &region)
    {
        std::vector<Region> &pieces = stale[static_cast<size_t>(slot)];
        staleScratch.clear();
        for (const Region &piece : pieces)
            for (const Region &part : subtractRegion(piece, region))
                staleScratch.push_back(part);
        pieces.swap(staleScratch);
    }

    double
    staleBytes(int slot) const
    {
        double bytes = 0.0;
        for (const Region &piece : stale[static_cast<size_t>(slot)])
            bytes += static_cast<double>(piece.area()) * kElemBytes;
        return bytes;
    }
};

/** Per-thread scratch of the fast path (contexts are shared across the
 * batch pool's threads; the mutable state must not be). */
struct FastWorkspace
{
    FastResidency residency;
    std::vector<SimTaskId> slotReady;
    std::vector<StageDyn> stages;
    std::vector<SimTaskId> deps;
    std::vector<SimTaskId> stageParts;
    std::vector<SimTaskId> copyIns;
    std::vector<SimTaskId> kdeps;
    std::vector<Region> chunks;

    /** Reused simulator: zero steady-state allocation across configs. */
    sim::ScheduleSimulator sched{1};

    /**
     * Per-stage cost memos, valid for one EvaluationContext (keyed by
     * its process-unique id; cleared on change). Stage costs are pure
     * functions of (context, stage position, a few small config-derived
     * integers), and candidate populations revisit the same few
     * placements constantly, so these hit nearly always.
     */
    uint64_t ctxId = 0;

    /** (stagePos, gpuRows, cpuSplit) -> per-chunk CPU task seconds. */
    std::unordered_map<uint64_t, std::vector<double>> cpuChunkSecs;

    /** (stagePos, gpuRows, lws, backend) -> kernel seconds. */
    std::unordered_map<uint64_t, double> gpuKernelSecs;

    void
    bindContext(const EvaluationContext &ctx)
    {
        if (ctxId != ctx.contextId()) {
            ctxId = ctx.contextId();
            cpuChunkSecs.clear();
            gpuKernelSecs.clear();
        }
    }
};

thread_local FastWorkspace tlsWorkspace;

/** Exact (collision-free) memo key for the CPU chunk table, or false
 * when a field exceeds its packed range (then compute unmemoized). */
bool
cpuChunkKey(size_t choiceIndex, size_t stagePos, int64_t gpuRows,
            int cpuSplit, uint64_t &key)
{
    if (choiceIndex >= (1u << 4) || stagePos >= (1u << 12) ||
        cpuSplit < 0 || cpuSplit >= (1 << 11) || gpuRows < 0 ||
        gpuRows >= (int64_t{1} << 37))
        return false;
    key = (static_cast<uint64_t>(choiceIndex) << 60) |
          (static_cast<uint64_t>(stagePos) << 48) |
          (static_cast<uint64_t>(cpuSplit) << 37) |
          static_cast<uint64_t>(gpuRows);
    return true;
}

/** Exact memo key for the GPU kernel-cost table, or false when a
 * field exceeds its packed range. */
bool
gpuKernelKey(size_t choiceIndex, size_t stagePos, int64_t gpuRows,
             int lws, Backend backend, uint64_t &key)
{
    if (choiceIndex >= (1u << 4) || stagePos >= (1u << 12) ||
        lws < 0 || lws >= (1 << 11) || gpuRows < 0 ||
        gpuRows >= (int64_t{1} << 35))
        return false;
    key = (static_cast<uint64_t>(choiceIndex) << 60) |
          (static_cast<uint64_t>(stagePos) << 48) |
          (static_cast<uint64_t>(lws) << 37) |
          (static_cast<uint64_t>(backend) << 35) |
          static_cast<uint64_t>(gpuRows);
    return true;
}

/**
 * Kernel seconds of one GPU stage, including the local-memory
 * feasibility check (which must throw exactly as the reference path
 * does; infeasible stages are computed — and throw — every time, so
 * only successful results are memoized).
 */
double
gpuStageSeconds(const RuleEvalInfo &ri, const StageDyn &stage,
                const Region &gpuRegion,
                const sim::MachineProfile &machine)
{
    ocl::NDRange range =
        groupShapeFor(*ri.rule, gpuRegion, stage.config.localWorkSize);
    if (stage.config.backend == Backend::OpenClLocal) {
        int64_t localBytes = localMemElemsFor(*ri.rule, range) *
                             static_cast<int64_t>(sizeof(double));
        if (localBytes > ocl::Device::kDefaultLocalMemBytes)
            PB_FATAL("local work size " << stage.config.localWorkSize
                                        << " needs " << localBytes
                                        << "B of local memory for rule '"
                                        << ri.rule->name() << "'");
    }
    sim::CostReport kcost =
        stage.config.backend == Backend::OpenClLocal
            ? pointRuleLocalCostCached(*ri.rule, gpuRegion, ri.extents,
                                       ri.flopsPerPoint, range)
            : pointRuleGlobalCostCached(*ri.rule, gpuRegion, ri.extents,
                                        ri.flopsPerPoint, range);
    return sim::CostModel::kernelSeconds(machine.ocl, kcost,
                                         stage.config.localWorkSize);
}

} // namespace

SimOutcome
simulateTransform(const lang::Transform &transform,
                  const TransformConfig &config, const SlotSizes &sizes,
                  const lang::ParamEnv &params,
                  const sim::MachineProfile &machine)
{
    std::vector<StagePlan> plans = planStages(transform, config, sizes);
    for (const StagePlan &plan : plans) {
        // An infeasible *configuration*, not a library bug: machines
        // without an OpenCL runtime exist (BigLittle), and a config
        // tuned elsewhere may well carry GPU placements. FatalError is
        // the taxonomy the engines price as +inf.
        if (plan.hasGpuPart() && !machine.hasOpenCL)
            PB_FATAL("OpenCL placement on machine without OpenCL ('"
                     << machine.name << "')");
    }

    ReferenceScheduler sched(machine);
    ResidencyModel residency;
    SimOutcome outcome;

    // Concurrent CPU chunk tasks share the memory system: price each
    // chunk against a per-worker slice of the machine's bandwidth.
    sim::DeviceSpec cpuShared = machine.cpu;
    cpuShared.memBandwidthGBs /=
        std::max(1, std::min(machine.workerThreads, machine.cpu.cores));

    // Join task id per slot, as in the real executor.
    std::map<std::string, SimTaskId> slotReady;
    auto depsOf = [&](const lang::RulePtr &rule) {
        std::vector<SimTaskId> deps;
        for (const std::string &input : rule->inputSlots()) {
            auto it = slotReady.find(input);
            if (it != slotReady.end())
                deps.push_back(it->second);
        }
        return deps;
    };

    for (const StagePlan &plan : plans) {
        const lang::RulePtr &rule = plan.rule;
        std::vector<SimTaskId> deps = depsOf(rule);
        std::vector<SimTaskId> stageParts;

        SlotExtents extents;
        extents.outputW = plan.outW;
        extents.outputH = plan.outH;
        if (rule->isPointRule()) {
            for (const lang::AccessPattern &access : rule->accesses()) {
                auto it = sizes.find(access.inputSlot);
                PB_ASSERT(it != sizes.end(), "no extent for slot '"
                                                 << access.inputSlot
                                                 << "'");
                extents.inputs.push_back(it->second);
            }
        }

        // ---- CPU part ------------------------------------------------
        if (plan.hasCpuPart()) {
            if (rule->isPointRule()) {
                for (const Region &chunk :
                     rowChunks(plan.cpuRegion(), plan.config.cpuSplit)) {
                    sim::CostReport cost =
                        pointRuleCpuCost(*rule, chunk, extents, params);
                    double sec =
                        sim::CostModel::cpuSeconds(cpuShared, cost, 1);
                    stageParts.push_back(sched.addTask(
                        SimResource::CpuWorker, sec, deps,
                        rule->name() + ":cpu"));
                }
            } else {
                Region whole(0, 0, plan.outW, plan.outH);
                sim::CostReport cost = rule->regionCost(whole, params);
                bool sequential = cost.sequentialFraction >= 0.99;
                double sec = sim::CostModel::cpuSeconds(
                    machine.cpu, cost,
                    sequential ? 1 : machine.workerThreads);
                stageParts.push_back(sched.addTask(
                    sequential ? SimResource::CpuWorker
                               : SimResource::CpuPool,
                    sec, deps, rule->name() + ":native"));
            }
        }

        // ---- GPU part ------------------------------------------------
        if (plan.hasGpuPart()) {
            Region gpuRegion = plan.gpuRegion();
            ocl::NDRange range = groupShapeFor(
                *rule, gpuRegion, plan.config.localWorkSize);

            // Copy-in transfers (deduplicated against residency).
            std::vector<SimTaskId> copyIns;
            for (size_t i = 0; i < rule->accesses().size(); ++i) {
                const lang::AccessPattern &access = rule->accesses()[i];
                auto [inW, inH] = extents.inputs[i];
                Region needed =
                    inputRegionFor(access, gpuRegion, inW, inH);
                if (needed.empty())
                    continue;
                double bytes =
                    residency.bytesToCopyIn(access.inputSlot, needed);
                if (bytes <= 0.0)
                    continue;
                outcome.bytesToDevice += bytes;
                copyIns.push_back(sched.addTask(
                    SimResource::Transfer,
                    machine.transfer.seconds(bytes), deps,
                    rule->name() + ":copyin"));
            }

            // A launch whose local-memory demand exceeds the device
            // fails, exactly as clEnqueueNDRangeKernel would.
            if (plan.config.backend == Backend::OpenClLocal) {
                int64_t localBytes =
                    localMemElemsFor(*rule, range) *
                    static_cast<int64_t>(sizeof(double));
                if (localBytes > ocl::Device::kDefaultLocalMemBytes)
                    PB_FATAL("local work size "
                             << plan.config.localWorkSize << " needs "
                             << localBytes
                             << "B of local memory for rule '"
                             << rule->name() << "'");
            }

            // Kernel execution on the in-order GPU queue.
            sim::CostReport kcost =
                plan.config.backend == Backend::OpenClLocal
                    ? pointRuleLocalCost(*rule, gpuRegion, extents,
                                         params, range)
                    : pointRuleGlobalCost(*rule, gpuRegion, extents,
                                          params, range);
            double ksec = sim::CostModel::kernelSeconds(
                machine.ocl, kcost, plan.config.localWorkSize);
            std::vector<SimTaskId> kdeps = deps;
            kdeps.insert(kdeps.end(), copyIns.begin(), copyIns.end());
            SimTaskId kernel =
                sched.addTask(SimResource::GpuQueue, ksec, kdeps,
                              rule->name() + ":kernel");
            ++outcome.kernelLaunches;
            residency.markWritten(rule->outputSlot(), gpuRegion);

            if (plan.copyOut == CopyOutPolicy::MustCopyOut) {
                double bytes =
                    static_cast<double>(gpuRegion.area()) * kElemBytes;
                outcome.bytesFromDevice += bytes;
                SimTaskId copyOut = sched.addTask(
                    SimResource::Transfer,
                    machine.transfer.seconds(bytes), {kernel},
                    rule->name() + ":copyout");
                residency.markCopiedOut(rule->outputSlot(), gpuRegion);
                stageParts.push_back(copyOut);
            } else {
                // Reused or may-copy-out: downstream consumption is
                // ordered by the in-order queue.
                stageParts.push_back(kernel);
            }
        }

        slotReady[rule->outputSlot()] = sched.addTask(
            SimResource::None, 0.0, stageParts, rule->name() + ":done");
    }

    // Final lazy copy-out: the caller consumes the transform outputs,
    // triggering the inserted may-copy-out checks.
    std::vector<SimTaskId> tail;
    for (const lang::MatrixSlot &slot : transform.slots()) {
        if (slot.role != lang::SlotRole::Output)
            continue;
        double bytes = residency.staleBytes(slot.name);
        if (bytes <= 0.0)
            continue;
        outcome.bytesFromDevice += bytes;
        std::vector<SimTaskId> deps;
        auto it = slotReady.find(slot.name);
        if (it != slotReady.end())
            deps.push_back(it->second);
        tail.push_back(sched.addTask(SimResource::Transfer,
                                     machine.transfer.seconds(bytes),
                                     deps, slot.name + ":lazy-copyout"));
    }
    (void)tail;

    outcome.seconds = sched.run();
    outcome.gpuBusySeconds = sched.gpuBusySeconds();
    outcome.cpuBusySeconds = sched.cpuBusySeconds();
    return outcome;
}

SimOutcome
simulateTransform(const EvaluationContext &ctx,
                  const TransformConfig &config)
{
    const sim::MachineProfile &machine = ctx.machine();
    const ChoiceEvalInfo &choice = ctx.choice(config.choiceIndex);
    PB_ASSERT(config.stages.size() == choice.rules.size(),
              "config has " << config.stages.size()
                            << " stages, choice has "
                            << choice.rules.size() << " rules");

    FastWorkspace &ws = tlsWorkspace;

    // ---- Stage planning (the planStages() work, minus everything the
    // context precomputed: execution order, extents, admissibility).
    ws.stages.clear();
    ws.stages.reserve(choice.rules.size());
    for (const RuleEvalInfo &ri : choice.rules) {
        StageDyn stage;
        stage.config = config.stage(ri.ruleIndex);
        stage.config.validate();
        if (stage.config.backend != Backend::Cpu) {
            if (!ri.admissibility.convertible) {
                PB_FATAL("rule '" << ri.rule->name()
                                  << "' placed on OpenCL backend but is "
                                     "not convertible: "
                                  << ri.admissibility.reason);
            }
            if (stage.config.backend == Backend::OpenClLocal &&
                !ri.admissibility.localMemCandidate) {
                PB_FATAL("rule '" << ri.rule->name()
                                  << "' has no local-memory variant "
                                     "(bounding box is not a constant "
                                     "greater than one)");
            }
            stage.gpuRows = stage.config.gpuRows(ri.outH);
        }
        ws.stages.push_back(stage);
    }

    // Copy-out classification over the precomputed reader lists.
    for (size_t p = 0; p < ws.stages.size(); ++p) {
        StageDyn &stage = ws.stages[p];
        const RuleEvalInfo &ri = choice.rules[p];
        if (stage.gpuRows <= 0) {
            stage.copyOut = CopyOutPolicy::None;
            continue;
        }
        bool consumedByCpu = false;
        bool consumedByGpu = false;
        for (size_t q : ri.readersAfter) {
            const StageDyn &later = ws.stages[q];
            if (later.config.backend == Backend::Cpu ||
                later.gpuRows < choice.rules[q].outH)
                consumedByCpu = true;
            else
                consumedByGpu = true;
        }
        if (consumedByCpu)
            stage.copyOut = CopyOutPolicy::MustCopyOut;
        else if (consumedByGpu)
            stage.copyOut = CopyOutPolicy::Reused;
        else if (ri.writesTransformOutput)
            stage.copyOut = CopyOutPolicy::MayCopyOut;
        else
            stage.copyOut = CopyOutPolicy::Reused;
    }

    for (const StageDyn &stage : ws.stages) {
        // Same taxonomy as the reference path above: infeasible
        // configuration, priced as +inf by the engines.
        if (stage.gpuRows > 0 && !machine.hasOpenCL)
            PB_FATAL("OpenCL placement on machine without OpenCL ('"
                     << machine.name << "')");
    }

    // ---- Simulation, mirroring the reference path task-for-task (same
    // task ids in the same order, so the makespan is bit-identical).
    ws.bindContext(ctx);
    sim::ScheduleSimulator &sched = ws.sched;
    sched.reset(machine);

    FastResidency &residency = ws.residency;
    residency.reset(ctx.slots().size());
    SimOutcome outcome;

    ws.slotReady.assign(ctx.slots().size(), -1);

    for (size_t p = 0; p < ws.stages.size(); ++p) {
        const StageDyn &stage = ws.stages[p];
        const RuleEvalInfo &ri = choice.rules[p];

        ws.deps.clear();
        for (int input : ri.inputSlotIds) {
            SimTaskId ready = ws.slotReady[static_cast<size_t>(input)];
            if (ready >= 0)
                ws.deps.push_back(ready);
        }
        ws.stageParts.clear();

        bool hasGpuPart = stage.gpuRows > 0;
        bool hasCpuPart = stage.gpuRows < ri.outH;
        Region gpuRegion(0, 0, ri.outW, stage.gpuRows);
        Region cpuRegion(0, stage.gpuRows, ri.outW,
                         ri.outH - stage.gpuRows);

        // ---- CPU part ------------------------------------------------
        if (hasCpuPart) {
            if (ri.isPointRule) {
                // Chunk task durations are a pure function of
                // (stage position, gpuRows, cpuSplit): memoized across
                // the batch's configurations.
                auto computeChunkSecs = [&](std::vector<double> &secs) {
                    rowChunksInto(cpuRegion, stage.config.cpuSplit,
                                  ws.chunks);
                    secs.reserve(ws.chunks.size());
                    for (const Region &chunk : ws.chunks) {
                        sim::CostReport cost = pointRuleCpuCostCached(
                            *ri.rule, chunk, ri.extents,
                            ri.flopsPerPoint);
                        secs.push_back(sim::CostModel::cpuSeconds(
                            ctx.cpuSharedSpec(), cost, 1));
                    }
                };
                uint64_t key = 0;
                const std::vector<double> *secs = nullptr;
                std::vector<double> local;
                if (cpuChunkKey(config.choiceIndex, p, stage.gpuRows,
                                stage.config.cpuSplit, key)) {
                    auto it = ws.cpuChunkSecs.find(key);
                    if (it == ws.cpuChunkSecs.end()) {
                        std::vector<double> fresh;
                        computeChunkSecs(fresh);
                        it = ws.cpuChunkSecs
                                 .emplace(key, std::move(fresh))
                                 .first;
                    }
                    secs = &it->second;
                } else {
                    computeChunkSecs(local);
                    secs = &local;
                }
                for (double sec : *secs)
                    ws.stageParts.push_back(sched.addTask(
                        SimResource::CpuWorker, sec, ws.deps));
            } else {
                ws.stageParts.push_back(sched.addTask(
                    ri.regionSequential ? SimResource::CpuWorker
                                        : SimResource::CpuPool,
                    ri.regionSeconds, ws.deps));
            }
        }

        // ---- GPU part ------------------------------------------------
        if (hasGpuPart) {
            ws.copyIns.clear();
            const auto &accesses = ri.rule->accesses();
            for (size_t i = 0; i < accesses.size(); ++i) {
                auto [inW, inH] = ri.extents.inputs[i];
                Region needed =
                    inputRegionFor(accesses[i], gpuRegion, inW, inH);
                if (needed.empty())
                    continue;
                double bytes = residency.bytesToCopyIn(
                    ri.inputSlotIds[i], needed);
                if (bytes <= 0.0)
                    continue;
                outcome.bytesToDevice += bytes;
                ws.copyIns.push_back(
                    sched.addTask(SimResource::Transfer,
                                  machine.transfer.seconds(bytes),
                                  ws.deps));
            }

            // Kernel seconds (and the local-memory feasibility check)
            // are a pure function of (stage position, gpuRows, lws,
            // backend): memoized across the batch's configurations.
            double ksec;
            {
                uint64_t key = 0;
                if (gpuKernelKey(config.choiceIndex, p, stage.gpuRows,
                                 stage.config.localWorkSize,
                                 stage.config.backend, key)) {
                    auto it = ws.gpuKernelSecs.find(key);
                    if (it == ws.gpuKernelSecs.end()) {
                        ksec = gpuStageSeconds(ri, stage, gpuRegion,
                                               machine);
                        ws.gpuKernelSecs.emplace(key, ksec);
                    } else {
                        ksec = it->second;
                    }
                } else {
                    ksec = gpuStageSeconds(ri, stage, gpuRegion,
                                           machine);
                }
            }
            ws.kdeps = ws.deps;
            ws.kdeps.insert(ws.kdeps.end(), ws.copyIns.begin(),
                            ws.copyIns.end());
            SimTaskId kernel =
                sched.addTask(SimResource::GpuQueue, ksec, ws.kdeps);
            ++outcome.kernelLaunches;
            residency.markWritten(ri.outputSlotId, gpuRegion);

            if (stage.copyOut == CopyOutPolicy::MustCopyOut) {
                double bytes =
                    static_cast<double>(gpuRegion.area()) * kElemBytes;
                outcome.bytesFromDevice += bytes;
                SimTaskId copyOut = sched.addTask(
                    SimResource::Transfer,
                    machine.transfer.seconds(bytes), {kernel});
                residency.markCopiedOut(ri.outputSlotId, gpuRegion);
                ws.stageParts.push_back(copyOut);
            } else {
                ws.stageParts.push_back(kernel);
            }
        }

        ws.slotReady[static_cast<size_t>(ri.outputSlotId)] =
            sched.addTask(SimResource::None, 0.0, ws.stageParts);
    }

    // Final lazy copy-out of transform outputs, as in the reference.
    for (int slot : ctx.outputSlotIds()) {
        double bytes = residency.staleBytes(slot);
        if (bytes <= 0.0)
            continue;
        outcome.bytesFromDevice += bytes;
        ws.deps.clear();
        SimTaskId ready = ws.slotReady[static_cast<size_t>(slot)];
        if (ready >= 0)
            ws.deps.push_back(ready);
        sched.addTask(SimResource::Transfer,
                      machine.transfer.seconds(bytes), ws.deps);
    }

    outcome.seconds = sched.run();
    outcome.gpuBusySeconds = sched.gpuBusySeconds();
    outcome.cpuBusySeconds = sched.cpuBusySeconds();
    return outcome;
}

} // namespace compiler
} // namespace petabricks
