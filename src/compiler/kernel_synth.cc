#include "compiler/kernel_synth.h"

#include <map>
#include <mutex>
#include <utility>

#include "compiler/rule_cost.h"
#include "support/error.h"

namespace petabricks {
namespace compiler {

namespace {

/** Decoded view of the synthesized-kernel argument convention. */
struct DecodedArgs
{
    int64_t outW, outH, outX0, outY0;
    std::vector<std::pair<int64_t, int64_t>> inputExtents;
    lang::ParamEnv params;
};

DecodedArgs
decode(const lang::RuleDef &rule, const ocl::KernelArgs &args)
{
    size_t numInputs = rule.accesses().size();
    PB_ASSERT(args.buffers.size() == 1 + numInputs,
              "kernel '" << rule.name() << "' expects " << 1 + numInputs
                         << " buffers, got " << args.buffers.size());
    PB_ASSERT(args.ints.size() >= 4 + 2 * numInputs,
              "kernel '" << rule.name() << "' missing int args");
    DecodedArgs d;
    d.outW = args.ints[0];
    d.outH = args.ints[1];
    d.outX0 = args.ints[2];
    d.outY0 = args.ints[3];
    for (size_t i = 0; i < numInputs; ++i)
        d.inputExtents.emplace_back(args.ints[4 + 2 * i],
                                    args.ints[5 + 2 * i]);
    d.params.assign(args.ints.begin() +
                        static_cast<int64_t>(4 + 2 * numInputs),
                    args.ints.end());
    return d;
}

/** Output region computed by a launch, from the args and range. */
Region
launchRegion(const DecodedArgs &d, const ocl::NDRange &range)
{
    return Region(d.outX0, d.outY0, range.globalW, range.globalH);
}

SlotExtents
extentsOf(const DecodedArgs &d)
{
    SlotExtents e;
    e.inputs = d.inputExtents;
    e.outputW = d.outW;
    e.outputH = d.outH;
    return e;
}

} // namespace

ocl::KernelArgs
makeKernelArgs(const lang::RuleDef &rule, ocl::BufferPtr out,
               std::vector<ocl::BufferPtr> inputs, int64_t outW,
               int64_t outH, const Region &outRegion,
               const std::vector<std::pair<int64_t, int64_t>> &inputExtents,
               const lang::ParamEnv &params)
{
    PB_ASSERT(inputs.size() == rule.accesses().size(),
              "input buffer count mismatch for '" << rule.name() << "'");
    PB_ASSERT(inputExtents.size() == inputs.size(),
              "input extent count mismatch for '" << rule.name() << "'");
    ocl::KernelArgs args;
    args.buffers.push_back(std::move(out));
    for (auto &in : inputs)
        args.buffers.push_back(std::move(in));
    args.ints = {outW, outH, outRegion.x, outRegion.y};
    for (auto [w, h] : inputExtents) {
        args.ints.push_back(w);
        args.ints.push_back(h);
    }
    for (int64_t p : params)
        args.ints.push_back(p);
    return args;
}

SynthesizedKernel
synthesizeKernels(const lang::RulePtr &rule)
{
    PB_ASSERT(rule && rule->isPointRule(),
              "can only synthesize kernels for point rules");
    SynthesizedKernel out;

    // ---- Basic variant: one work-item per output cell, global memory.
    auto globalBody = [rule](ocl::GroupCtx &ctx) {
        DecodedArgs d = decode(*rule, ctx.args());
        double *outBase = ctx.args().buffer(0).as<double>();
        std::vector<lang::CellReader> readers;
        for (size_t i = 0; i < rule->accesses().size(); ++i) {
            readers.emplace_back(
                ctx.args().buffer(1 + i).as<double>(),
                d.inputExtents[i].first, 0, 0);
        }
        lang::PointArgs pt;
        pt.inputs = &readers;
        pt.params = &d.params;
        ctx.forEachItem([&](int64_t gx, int64_t gy, int64_t, int64_t) {
            pt.x = d.outX0 + gx;
            pt.y = d.outY0 + gy;
            outBase[pt.y * d.outW + pt.x] = rule->pointBody()(pt);
        });
    };
    auto globalCost = [rule](const ocl::KernelArgs &args,
                             const ocl::NDRange &range) {
        DecodedArgs d = decode(*rule, args);
        return pointRuleGlobalCost(*rule, launchRegion(d, range),
                                   extentsOf(d), d.params, range);
    };
    out.global = std::make_shared<ocl::Kernel>(
        rule->name() + "_ocl", "pbcl:" + rule->name() + ":global",
        globalBody, globalCost);

    // ---- Local-memory variant (phase 3), when some input has a
    // constant bounding box greater than one.
    bool anyStaged = false;
    for (const lang::AccessPattern &access : rule->accesses())
        if (access.constantBoundingBoxArea() > 1)
            anyStaged = true;
    if (!anyStaged)
        return out;

    auto localBody = [rule](ocl::GroupCtx &ctx) {
        DecodedArgs d = decode(*rule, ctx.args());
        double *outBase = ctx.args().buffer(0).as<double>();
        const ocl::NDRange &range = ctx.range();

        // Cooperative load phase: stage each windowed input's tile.
        struct StagedTile
        {
            int64_t arenaOffset;
            int64_t tileW, tileH;
            int64_t originX, originY;
        };
        std::vector<StagedTile> tiles(rule->accesses().size(),
                                      StagedTile{-1, 0, 0, 0, 0});
        int64_t arena = 0;
        int64_t liveItems = std::max<int64_t>(ctx.liveItems(), 1);
        for (size_t i = 0; i < rule->accesses().size(); ++i) {
            const lang::AccessPattern &access = rule->accesses()[i];
            if (access.constantBoundingBoxArea() <= 1)
                continue;
            auto [inW, inH] = d.inputExtents[i];
            StagedTile tile;
            tile.arenaOffset = arena;
            // The tile is NOT clamped to the input extent: with a
            // negative window offset the tile origin sits outside the
            // matrix and clamping would lose coverage of the last
            // columns. Out-of-range cells are simply skipped below.
            tile.tileW =
                access.x.stride * (range.localW - 1) + access.x.extent;
            tile.tileH =
                access.y.stride * (range.localH - 1) + access.y.extent;
            tile.originX =
                access.x.stride * (d.outX0 + ctx.originX()) +
                access.x.offset;
            tile.originY =
                access.y.stride * (d.outY0 + ctx.originY()) +
                access.y.offset;
            arena += tile.tileW * tile.tileH;
            const double *inBase = ctx.args().buffer(1 + i).as<double>();
            double *local = ctx.localMem();
            int64_t tileCells = tile.tileW * tile.tileH;
            // Each work-item loads cells strided by the group size — the
            // multi-phase cooperative load of Section 3.1. Item ids are
            // contiguous over the *live* (edge-clipped) group so the
            // strided sweep covers every tile cell.
            int64_t liveW = std::max<int64_t>(ctx.liveWidth(), 1);
            ctx.forEachItem([&](int64_t, int64_t, int64_t lx, int64_t ly) {
                int64_t itemId = ly * liveW + lx;
                for (int64_t cell = itemId; cell < tileCells;
                     cell += liveItems) {
                    int64_t tx = cell % tile.tileW;
                    int64_t ty = cell / tile.tileW;
                    int64_t ax = tile.originX + tx;
                    int64_t ay = tile.originY + ty;
                    if (ax < 0 || ax >= inW || ay < 0 || ay >= inH)
                        continue; // edge groups clamp to the matrix
                    local[tile.arenaOffset + ty * tile.tileW + tx] =
                        inBase[ay * inW + ax];
                }
            });
            tiles[i] = tile;
        }
        ctx.barrier();

        // Compute phase: window reads served from the scratchpad.
        std::vector<lang::CellReader> readers;
        for (size_t i = 0; i < rule->accesses().size(); ++i) {
            if (tiles[i].arenaOffset >= 0) {
                readers.emplace_back(ctx.localMem() + tiles[i].arenaOffset,
                                     tiles[i].tileW, tiles[i].originX,
                                     tiles[i].originY);
            } else {
                readers.emplace_back(
                    ctx.args().buffer(1 + i).as<double>(),
                    d.inputExtents[i].first, 0, 0);
            }
        }
        lang::PointArgs pt;
        pt.inputs = &readers;
        pt.params = &d.params;
        ctx.forEachItem([&](int64_t gx, int64_t gy, int64_t, int64_t) {
            pt.x = d.outX0 + gx;
            pt.y = d.outY0 + gy;
            outBase[pt.y * d.outW + pt.x] = rule->pointBody()(pt);
        });
    };
    auto localCost = [rule](const ocl::KernelArgs &args,
                            const ocl::NDRange &range) {
        DecodedArgs d = decode(*rule, args);
        return pointRuleLocalCost(*rule, launchRegion(d, range),
                                  extentsOf(d), d.params, range);
    };
    auto localMem = [rule](const ocl::KernelArgs &,
                           const ocl::NDRange &range) {
        return localMemElemsFor(*rule, range);
    };
    out.local = std::make_shared<ocl::Kernel>(
        rule->name() + "_ocl_local", "pbcl:" + rule->name() + ":local",
        localBody, localCost, localMem);
    return out;
}

SynthesizedKernel
synthesizeKernelsCached(const lang::RulePtr &rule)
{
    // Keyed by rule identity: RuleDefs are immutable shared_ptrs built
    // once per benchmark, so pointer equality is definition equality,
    // and the synthesized kernels' bodies capture the RulePtr — an
    // entry pins its rule alive, so a cached address can never be
    // reused by a different definition. Hosts that construct
    // benchmarks dynamically mint fresh rules per construction; the
    // size cap keeps that from growing the cache without bound
    // (results are returned by value, so eviction never invalidates a
    // caller).
    constexpr size_t kMaxEntries = 128;
    static std::mutex mutex;
    static std::map<const lang::RuleDef *, SynthesizedKernel> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(rule.get());
    if (it != cache.end())
        return it->second;
    if (cache.size() >= kMaxEntries)
        cache.clear();
    SynthesizedKernel kernels = synthesizeKernels(rule);
    cache.emplace(rule.get(), kernels);
    return kernels;
}

} // namespace compiler
} // namespace petabricks
