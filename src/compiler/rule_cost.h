/**
 * @file
 * Analytic cost estimation for point rules, shared by the synthesized
 * kernels' cost functions and the model-mode simulator so both always
 * agree.
 *
 * The estimates encode the tradeoff at the heart of the paper's
 * Figure 2: the global-memory variant re-reads each input's bounding
 * box per output point (redundant loads through the slow path), while
 * the local-memory variant loads each input tile once per work-group
 * and replaces the per-point global reads with local-memory reads, at
 * the price of barriers and the staging traffic itself — which is pure
 * overhead on devices without a dedicated scratchpad.
 */

#ifndef PETABRICKS_COMPILER_RULE_COST_H
#define PETABRICKS_COMPILER_RULE_COST_H

#include "lang/rule.h"
#include "lang/transform.h"
#include "ocl/ndrange.h"
#include "sim/cost_model.h"

namespace petabricks {
namespace compiler {

/** Extents of the matrices a rule touches (model mode has no data). */
struct SlotExtents
{
    /** (w, h) per input slot, aligned with the rule's access order. */
    std::vector<std::pair<int64_t, int64_t>> inputs;
    int64_t outputW = 0;
    int64_t outputH = 0;
};

/** Bytes per element of every matrix in this library. */
inline constexpr double kElemBytes = sizeof(double);

/**
 * Input region a point rule needs to compute @p outRegion of its
 * output: the union of per-point bounding boxes, clamped to the input's
 * bounds.
 */
Region inputRegionFor(const lang::AccessPattern &access,
                      const Region &outRegion, int64_t inputW,
                      int64_t inputH);

/**
 * Cost of computing @p outRegion of point rule @p rule with the
 * OpenCL *global-memory* variant.
 */
sim::CostReport pointRuleGlobalCost(const lang::RuleDef &rule,
                                    const Region &outRegion,
                                    const SlotExtents &extents,
                                    const lang::ParamEnv &params,
                                    const ocl::NDRange &range);

/**
 * Cost of the *local-memory* variant: inputs with a constant bounding
 * box larger than one are staged into the scratchpad cooperatively.
 */
sim::CostReport pointRuleLocalCost(const lang::RuleDef &rule,
                                   const Region &outRegion,
                                   const SlotExtents &extents,
                                   const lang::ParamEnv &params,
                                   const ocl::NDRange &range);

/**
 * Cost of computing @p outRegion on the CPU backend with native code
 * (one chunk task; callers divide regions into chunks themselves).
 */
sim::CostReport pointRuleCpuCost(const lang::RuleDef &rule,
                                 const Region &outRegion,
                                 const SlotExtents &extents,
                                 const lang::ParamEnv &params);

/**
 * @{ The same estimates with rule->flopsPerPoint(params) precomputed
 * (an EvaluationContext caches it once per batch; the ParamEnv
 * overloads above forward here). Values are bit-identical.
 */
sim::CostReport pointRuleGlobalCostCached(const lang::RuleDef &rule,
                                          const Region &outRegion,
                                          const SlotExtents &extents,
                                          double flopsPerPoint,
                                          const ocl::NDRange &range);

sim::CostReport pointRuleLocalCostCached(const lang::RuleDef &rule,
                                         const Region &outRegion,
                                         const SlotExtents &extents,
                                         double flopsPerPoint,
                                         const ocl::NDRange &range);

sim::CostReport pointRuleCpuCostCached(const lang::RuleDef &rule,
                                       const Region &outRegion,
                                       const SlotExtents &extents,
                                       double flopsPerPoint);
/** @} */

/** Local-memory elements per work-group for the local variant. */
int64_t localMemElemsFor(const lang::RuleDef &rule,
                         const ocl::NDRange &range);

/**
 * Work-group shape for @p totalItems work-items: rules whose windows
 * extend in y get square-ish 2-D groups (so vertically overlapping
 * tiles are reused within a group), pure-row rules get 1-D groups.
 */
ocl::NDRange groupShapeFor(const lang::RuleDef &rule,
                           const Region &outRegion, int totalItems);

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_RULE_COST_H
