/**
 * @file
 * Data movement analysis (paper Section 3.2).
 *
 * Performed at scheduling time, once the backend placement of every
 * rule application is known. Output regions generated on the GPU are
 * classified into three states:
 *
 *  - *must copy-out*: immediately followed by a rule that executes (at
 *    least partly) on the CPU — data is copied back eagerly, via a
 *    non-blocking read polled by a copy-out completion task;
 *  - *reused*: immediately followed by another rule on the GPU — the
 *    data stays in GPU memory between rule applications;
 *  - *may copy-out*: followed by dynamic control flow the compiler
 *    cannot analyze (here: the region is a transform output consumed by
 *    the unknown caller) — a lazy check-and-copy runs when the data is
 *    actually requested.
 *
 * planStages() combines this classification with the per-stage GPU-CPU
 * ratio split into the stage plan that both the real executor and the
 * model-mode simulator interpret.
 */

#ifndef PETABRICKS_COMPILER_DATA_MOVEMENT_H
#define PETABRICKS_COMPILER_DATA_MOVEMENT_H

#include <map>
#include <string>
#include <vector>

#include "compiler/backend.h"
#include "lang/choice_graph.h"

namespace petabricks {
namespace compiler {

/** Copy-out state of a GPU-produced region (Section 3.2). */
enum class CopyOutPolicy
{
    /** No GPU part, nothing to classify. */
    None,
    /** Next consumer runs on the GPU: leave the data there. */
    Reused,
    /** Next consumer (partly) on the CPU: eager non-blocking copy. */
    MustCopyOut,
    /** Consumed by dynamic control flow: lazy check-and-copy. */
    MayCopyOut,
};

const char *copyOutPolicyName(CopyOutPolicy policy);

/** (w, h) extents of every slot of one transform invocation. */
using SlotSizes = std::map<std::string, std::pair<int64_t, int64_t>>;

/** One rule application with placement and movement decisions. */
struct StagePlan
{
    size_t ruleIndex = 0; // position in the choice's rule list
    lang::RulePtr rule;
    StageConfig config;

    /** Output rows [0, gpuRows) on the GPU, [gpuRows, outH) on CPU. */
    int64_t gpuRows = 0;
    int64_t outW = 0;
    int64_t outH = 0;

    /** Classification of the GPU-written part of the output. */
    CopyOutPolicy copyOut = CopyOutPolicy::None;

    bool hasGpuPart() const { return gpuRows > 0; }
    bool hasCpuPart() const { return gpuRows < outH; }

    Region gpuRegion() const { return Region(0, 0, outW, gpuRows); }
    Region
    cpuRegion() const
    {
        return Region(0, gpuRows, outW, outH - gpuRows);
    }
};

/**
 * Build the stage plans for @p config applied to @p transform: resolve
 * execution order from the choice dependency graph, split each output
 * by the GPU-CPU ratio, and run the copy-out classification.
 *
 * @param sizes extents of all bound slots.
 * @throws FatalError if the config places an inadmissible rule on an
 *         OpenCL backend.
 */
std::vector<StagePlan> planStages(const lang::Transform &transform,
                                  const TransformConfig &config,
                                  const SlotSizes &sizes);

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_DATA_MOVEMENT_H
