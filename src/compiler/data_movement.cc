#include "compiler/data_movement.h"

#include "compiler/admissibility.h"
#include "support/error.h"

namespace petabricks {
namespace compiler {

const char *
copyOutPolicyName(CopyOutPolicy policy)
{
    switch (policy) {
      case CopyOutPolicy::None: return "none";
      case CopyOutPolicy::Reused: return "reused";
      case CopyOutPolicy::MustCopyOut: return "must-copy-out";
      case CopyOutPolicy::MayCopyOut: return "may-copy-out";
    }
    return "?";
}

std::vector<StagePlan>
planStages(const lang::Transform &transform, const TransformConfig &config,
           const SlotSizes &sizes)
{
    const lang::Choice &choice = transform.choiceAt(config.choiceIndex);
    PB_ASSERT(config.stages.size() == choice.rules.size(),
              "config has " << config.stages.size() << " stages, choice '"
                            << choice.name << "' has "
                            << choice.rules.size() << " rules");

    lang::ChoiceDependencyGraph graph(transform, config.choiceIndex);
    std::vector<size_t> order = graph.executionOrder();

    std::vector<StagePlan> plans;
    plans.reserve(order.size());
    for (size_t ruleIndex : order) {
        const lang::RulePtr &rule = choice.rules[ruleIndex];
        StagePlan plan;
        plan.ruleIndex = ruleIndex;
        plan.rule = rule;
        plan.config = config.stage(ruleIndex);
        plan.config.validate();

        auto sizeIt = sizes.find(rule->outputSlot());
        PB_ASSERT(sizeIt != sizes.end(),
                  "no extent for slot '" << rule->outputSlot() << "'");
        plan.outW = sizeIt->second.first;
        plan.outH = sizeIt->second.second;

        if (plan.config.backend != Backend::Cpu) {
            Admissibility adm = analyzeRule(graph, ruleIndex);
            if (!adm.convertible) {
                PB_FATAL("rule '" << rule->name()
                                  << "' placed on OpenCL backend but is "
                                     "not convertible: "
                                  << adm.reason);
            }
            if (plan.config.backend == Backend::OpenClLocal &&
                !adm.localMemCandidate) {
                PB_FATAL("rule '" << rule->name()
                                  << "' has no local-memory variant "
                                     "(bounding box is not a constant "
                                     "greater than one)");
            }
            plan.gpuRows = plan.config.gpuRows(plan.outH);
        }
        plans.push_back(std::move(plan));
    }

    // Copy-out classification, in schedule order.
    for (size_t i = 0; i < plans.size(); ++i) {
        StagePlan &plan = plans[i];
        if (!plan.hasGpuPart()) {
            plan.copyOut = CopyOutPolicy::None;
            continue;
        }
        const std::string &slot = plan.rule->outputSlot();
        bool consumedByCpu = false;
        bool consumedByGpu = false;
        for (size_t j = i + 1; j < plans.size(); ++j) {
            const StagePlan &later = plans[j];
            bool reads = false;
            for (const std::string &input : later.rule->inputSlots())
                if (input == slot)
                    reads = true;
            if (!reads)
                continue;
            if (later.config.backend == Backend::Cpu || later.hasCpuPart())
                consumedByCpu = true;
            else
                consumedByGpu = true;
        }
        if (consumedByCpu) {
            plan.copyOut = CopyOutPolicy::MustCopyOut;
        } else if (consumedByGpu) {
            plan.copyOut = CopyOutPolicy::Reused;
        } else if (transform.slotRole(slot) == lang::SlotRole::Output) {
            // Past the transform boundary the consumer is dynamic
            // control flow we cannot analyze: lazy copy-out.
            plan.copyOut = CopyOutPolicy::MayCopyOut;
        } else {
            // Dead intermediate produced on the GPU; nothing reads it,
            // so the data can simply stay there.
            plan.copyOut = CopyOutPolicy::Reused;
        }
    }
    return plans;
}

} // namespace compiler
} // namespace petabricks
