#include "compiler/admissibility.h"

#include <set>

namespace petabricks {
namespace compiler {

Admissibility
analyzeRule(const lang::ChoiceDependencyGraph &graph, size_t ruleIndex)
{
    Admissibility result;
    const lang::ChoiceEdge &edge = graph.edges()[ruleIndex];
    const lang::RuleDef &rule = *edge.rule;

    // Phase 1: dependency pattern of the output's strongly connected
    // component must fit the OpenCL execution model.
    lang::DependencyPattern pattern = graph.pattern(ruleIndex);
    if (pattern == lang::DependencyPattern::Wavefront) {
        result.reason = "wavefront dependency pattern cannot be mapped";
        return result;
    }

    // Phase 2: body constructs that cannot be converted.
    if (!rule.isPointRule()) {
        result.reason = "opaque native region body";
        return result;
    }
    if (rule.callsExternalLibrary()) {
        result.reason = "calls an external library";
        return result;
    }
    if (rule.hasInlineNativeCode()) {
        result.reason = "contains inline native code";
        return result;
    }
    if (rule.openclCompileFails()) {
        // The paper detects these by attempting compilation and
        // rejecting synthetic rules that fail to compile.
        result.reason = "rejected by trial OpenCL compilation";
        return result;
    }

    result.convertible = true;

    // Phase 3 eligibility: a constant bounding box greater than one on
    // some input enables the local-memory variant; a bounding box of
    // one would mean threads sharing a work-group never share data.
    for (const lang::AccessPattern &access : rule.accesses()) {
        if (access.constantBoundingBoxArea() > 1) {
            result.localMemCandidate = true;
            break;
        }
    }
    return result;
}

int
countSynthesizedKernels(const lang::Transform &transform)
{
    std::set<std::string> global;
    std::set<std::string> local;
    for (size_t c = 0; c < transform.choices().size(); ++c) {
        lang::ChoiceDependencyGraph graph(transform, c);
        for (size_t r = 0; r < graph.edges().size(); ++r) {
            Admissibility adm = analyzeRule(graph, r);
            const std::string &name = graph.edges()[r].rule->name();
            if (adm.convertible)
                global.insert(name);
            if (adm.localMemCandidate)
                local.insert(name);
        }
    }
    return static_cast<int>(global.size() + local.size());
}

} // namespace compiler
} // namespace petabricks
