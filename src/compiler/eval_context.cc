#include "compiler/eval_context.h"

#include <algorithm>
#include <atomic>

#include "sim/cost_model.h"
#include "support/error.h"

namespace petabricks {
namespace compiler {

namespace {

uint64_t
nextContextId()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

EvaluationContext::EvaluationContext(
    std::shared_ptr<const lang::Transform> transform,
    const SlotSizes &sizes, lang::ParamEnv params,
    const sim::MachineProfile &machine)
    : transform_(std::move(transform)), params_(std::move(params)),
      machine_(machine), contextId_(nextContextId())
{
    PB_ASSERT(transform_ != nullptr, "null transform");

    for (const lang::MatrixSlot &slot : transform_->slots()) {
        int id = slots_.intern(slot.name);
        auto it = sizes.find(slot.name);
        PB_ASSERT(it != sizes.end(),
                  "no extent for slot '" << slot.name << "'");
        extents_.push_back(it->second);
        if (slot.role == lang::SlotRole::Output)
            outputSlots_.push_back(id);
    }

    cpuShared_ = machine_.cpu;
    cpuShared_.memBandwidthGBs /= std::max(
        1, std::min(machine_.workerThreads, machine_.cpu.cores));

    for (size_t c = 0; c < transform_->choices().size(); ++c) {
        lang::ChoiceDependencyGraph graph(*transform_, c);
        const lang::Choice &choice = transform_->choiceAt(c);

        ChoiceEvalInfo info;
        info.order = graph.executionOrder();
        info.rules.reserve(info.order.size());
        for (size_t ruleIndex : info.order) {
            const lang::RulePtr &rule = choice.rules[ruleIndex];
            RuleEvalInfo ri;
            ri.ruleIndex = ruleIndex;
            ri.rule = rule;
            ri.outputSlotId = slots_.idOf(rule->outputSlot());
            auto [outW, outH] =
                extents_[static_cast<size_t>(ri.outputSlotId)];
            ri.outW = outW;
            ri.outH = outH;
            ri.isPointRule = rule->isPointRule();
            for (const std::string &input : rule->inputSlots())
                ri.inputSlotIds.push_back(slots_.idOf(input));
            if (ri.isPointRule) {
                ri.flopsPerPoint = rule->flopsPerPoint(params_);
                ri.extents.outputW = outW;
                ri.extents.outputH = outH;
                for (const lang::AccessPattern &access :
                     rule->accesses())
                    ri.extents.inputs.push_back(extents_[static_cast<
                        size_t>(slots_.idOf(access.inputSlot))]);
            } else {
                sim::CostReport cost = rule->regionCost(
                    Region(0, 0, outW, outH), params_);
                ri.regionSequential = cost.sequentialFraction >= 0.99;
                ri.regionSeconds = sim::CostModel::cpuSeconds(
                    machine_.cpu, cost,
                    ri.regionSequential ? 1 : machine_.workerThreads);
            }
            ri.admissibility = analyzeRule(graph, ruleIndex);
            ri.writesTransformOutput =
                transform_->slotRole(rule->outputSlot()) ==
                lang::SlotRole::Output;
            info.rules.push_back(std::move(ri));
        }

        for (size_t p = 0; p < info.rules.size(); ++p) {
            for (size_t q = p + 1; q < info.rules.size(); ++q) {
                const auto &inputs = info.rules[q].inputSlotIds;
                if (std::find(inputs.begin(), inputs.end(),
                              info.rules[p].outputSlotId) !=
                    inputs.end())
                    info.rules[p].readersAfter.push_back(q);
            }
        }

        choices_.push_back(std::move(info));
    }
}

} // namespace compiler
} // namespace petabricks
