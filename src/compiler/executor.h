/**
 * @file
 * Real-mode transform execution: interprets stage plans as task graphs
 * on the heterogeneous runtime.
 *
 * For each stage, the CPU part of the output is chunked across
 * work-stealing CPU tasks while the GPU part becomes the paper's four
 * GPU task classes (Section 4.2), pushed through the GPU management
 * thread:
 *   prepare -> copy-in (one per input) -> execute -> copy-out completion
 * The execute task initiates the kernel and the eager (must-copy-out)
 * read without blocking; the completion task polls the read's event and
 * requeues itself while the read is in flight. May-copy-out outputs
 * stay on the device until syncOutputs() (the compiler-inserted lazy
 * check) requests them.
 */

#ifndef PETABRICKS_COMPILER_EXECUTOR_H
#define PETABRICKS_COMPILER_EXECUTOR_H

#include <map>
#include <string>

#include "compiler/data_movement.h"
#include "compiler/kernel_synth.h"
#include "lang/transform.h"
#include "runtime/runtime.h"

namespace petabricks {
namespace compiler {

/** Executes transforms on a runtime::Runtime. */
class TransformExecutor
{
  public:
    explicit TransformExecutor(runtime::Runtime &rt) : rt_(rt) {}

    /**
     * Execute @p transform over @p binding with placement @p config and
     * block until done. Outputs produced on the GPU under a
     * may-copy-out policy remain device-resident; call syncOutputs()
     * before reading them on the host.
     */
    void execute(const lang::Transform &transform, lang::Binding &binding,
                 const TransformConfig &config);

    /**
     * The lazy copy-out check the compiler inserts before consuming
     * code: ensure every output slot is valid in host memory.
     */
    void syncOutputs(const lang::Transform &transform,
                     lang::Binding &binding);

  private:
    SynthesizedKernel kernelsFor(const lang::RulePtr &rule);

    runtime::Runtime &rt_;
};

/** Run a point rule's body over @p region against host matrices. */
void runPointRuleOnHost(const lang::RuleDef &rule, lang::Binding &binding,
                        const Region &region);

} // namespace compiler
} // namespace petabricks

#endif // PETABRICKS_COMPILER_EXECUTOR_H
