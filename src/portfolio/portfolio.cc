#include "portfolio/portfolio.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "benchmarks/registry.h"
#include "support/crashpoint.h"
#include "support/error.h"
#include "support/fsck.h"
#include "support/hash.h"
#include "support/kvfile.h"
#include "support/logging.h"

namespace petabricks {
namespace portfolio {

namespace fs = std::filesystem;

namespace {

/** Filesystem-safe benchmark slug ("Black-Scholes" -> "black-scholes"). */
std::string
slugify(const std::string &name)
{
    std::string slug;
    for (char c : name) {
        unsigned char u = static_cast<unsigned char>(c);
        slug += std::isalnum(u)
                    ? static_cast<char>(std::tolower(u))
                    : '-';
    }
    return slug;
}

std::string
hex16(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

uint64_t
parseHex16(const std::string &text, const char *what)
{
    uint64_t value = 0;
    char trailing = 0;
    if (std::sscanf(text.c_str(), "%" SCNx64 " %c", &value, &trailing) != 1)
        PB_FATAL("malformed " << what << " '" << text << "'");
    return value;
}

/** Content checksum over every entry except the checksum itself, in
 * sorted key order — any torn or edited byte fails the load. */
uint64_t
contentChecksum(const KvFile &kv)
{
    Fnv1a hash;
    for (const std::string &key : kv.keys()) {
        if (key == "portfolio.checksum")
            continue;
        hash.mix(key);
        hash.mix(kv.get(key));
    }
    return hash.value();
}

KvFile
recordToKv(const ChampionRecord &record)
{
    KvFile kv;
    kv.setInt("portfolio.version", 1);
    kv.set("champion.benchmark", record.benchmark);
    kv.set("champion.machine", record.machineName);
    kv.set("champion.machineFingerprint",
           hex16(record.machineFingerprint));
    kv.setInt("champion.inputSize", record.inputSize);
    // The decimal is advisory (humans diffing the file); the bit
    // pattern is the value that round-trips exactly.
    kv.setDouble("champion.seconds", record.seconds);
    kv.set("champion.secondsBits",
           hex16(std::bit_cast<uint64_t>(record.seconds)));
    kv.set("champion.configFingerprint",
           hex16(record.configFingerprint));
    KvFile configKv = record.config.toKv();
    for (const std::string &key : configKv.keys())
        kv.set("config." + key, configKv.get(key));
    kv.set("portfolio.checksum", hex16(contentChecksum(kv)));
    return kv;
}

ChampionRecord
recordFromFile(const std::string &path)
{
    KvFile kv = KvFile::load(path);
    if (kv.getIntOr("portfolio.version", -1) != 1)
        PB_FATAL("'" << path << "' is not a portfolio champion file");
    if (parseHex16(kv.get("portfolio.checksum"), "portfolio checksum") !=
        contentChecksum(kv))
        PB_FATAL("'" << path << "' fails its checksum (torn write?)");

    ChampionRecord record;
    record.benchmark = kv.get("champion.benchmark");
    record.machineName = kv.get("champion.machine");
    record.machineFingerprint = parseHex16(
        kv.get("champion.machineFingerprint"), "machine fingerprint");
    record.inputSize = kv.getInt("champion.inputSize");
    record.seconds = std::bit_cast<double>(
        parseHex16(kv.get("champion.secondsBits"), "seconds bits"));
    record.configFingerprint = parseHex16(
        kv.get("champion.configFingerprint"), "config fingerprint");

    // The benchmark's seed config is the deserialization schema, as
    // everywhere else (checkpoints, choice files). Unknown benchmark
    // names throw here and quarantine the file.
    KvFile configKv;
    const std::string prefix = "config.";
    for (const std::string &key : kv.keys())
        if (key.rfind(prefix, 0) == 0)
            configKv.set(key.substr(prefix.size()), kv.get(key));
    record.config =
        apps::findBenchmark(record.benchmark)->seedConfig();
    record.config.loadValues(configKv);
    if (record.config.valueFingerprint() != record.configFingerprint)
        PB_FATAL("'" << path << "' config does not match its stored "
                     << "fingerprint");
    return record;
}

} // namespace

ChampionPortfolio::ChampionPortfolio(std::string dir, bool fsck)
    : dir_(std::move(dir)), fsck_(fsck)
{
    if (dir_.empty())
        return; // memory-only
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        PB_FATAL("cannot create portfolio directory '"
                 << dir_ << "': " << ec.message());
    loadExisting();
}

void
ChampionPortfolio::loadExisting()
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (entry.path().extension() == ".kv" &&
            name.rfind("champ-", 0) == 0)
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end()); // deterministic load order
    for (const std::string &path : paths) {
        try {
            ChampionRecord record = recordFromFile(path);
            Key key{record.benchmark, record.machineFingerprint,
                    record.inputSize};
            records_[key] = std::move(record);
            ++stats_.loaded;
        } catch (const std::exception &e) {
            if (fsck_) {
                fsck::quarantine(path);
                ++stats_.quarantined;
                PB_WARN("portfolio: quarantined champion '"
                        << path << "' (" << e.what() << ")");
            } else {
                PB_WARN("portfolio: skipping invalid champion '"
                        << path << "' (" << e.what() << ")");
            }
        }
    }
}

std::string
ChampionPortfolio::championPath(const ChampionRecord &record) const
{
    return dir_ + "/champ-" + slugify(record.benchmark) + "-" +
           hex16(record.machineFingerprint) + "-" +
           std::to_string(record.inputSize) + ".kv";
}

void
ChampionPortfolio::put(ChampionRecord record)
{
    record.configFingerprint = record.config.valueFingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dir_.empty()) {
        const std::string path = championPath(record);
        try {
            recordToKv(record).saveAtomic(path, "portfolio.champ");
        } catch (const IoError &e) {
            // Keep the in-memory champion serving dispatches; the
            // previous on-disk champion (if any) is still intact, so a
            // restart falls back to it — strictly older, never torn.
            ++stats_.writeFailures;
            PB_WARN("portfolio: champion write failed, keeping "
                    "in-memory record ("
                    << e.what() << ")");
        }
    }
    Key key{record.benchmark, record.machineFingerprint,
            record.inputSize};
    records_[key] = std::move(record);
    ++stats_.stored;
}

std::optional<ChampionRecord>
ChampionPortfolio::exact(const std::string &benchmark,
                         uint64_t machineFingerprint, int64_t n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(Key{benchmark, machineFingerprint, n});
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

std::vector<ChampionRecord>
ChampionPortfolio::championsFor(const std::string &benchmark,
                                uint64_t machineFingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ChampionRecord> out;
    auto it = records_.lower_bound(
        Key{benchmark, machineFingerprint,
            std::numeric_limits<int64_t>::min()});
    for (; it != records_.end(); ++it) {
        const auto &[key, record] = *it;
        if (std::get<0>(key) != benchmark ||
            std::get<1>(key) != machineFingerprint)
            break;
        out.push_back(record);
    }
    return out;
}

std::vector<ChampionRecord>
ChampionPortfolio::allFor(const std::string &benchmark) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ChampionRecord> out;
    for (const auto &[key, record] : records_)
        if (std::get<0>(key) == benchmark)
            out.push_back(record);
    return out;
}

std::vector<ChampionRecord>
ChampionPortfolio::all() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ChampionRecord> out;
    out.reserve(records_.size());
    for (const auto &[key, record] : records_)
        out.push_back(record);
    return out;
}

size_t
ChampionPortfolio::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

PortfolioStats
ChampionPortfolio::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace portfolio
} // namespace petabricks
