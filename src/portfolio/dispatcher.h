/**
 * @file
 * Input-adaptive dispatch over a ChampionPortfolio.
 *
 * Given (benchmark, n, machine), pick the stored champion that should
 * run — the paper's portability claim turned into a lookup:
 *
 *  1. *Exact hit*: a champion tuned at exactly (machine, n) is served
 *     as stored, no pricing.
 *  2. *Nearest-size pricing*: otherwise the topK champions tuned on
 *     this machine nearest to n (log-scale distance) are priced under
 *     the cost model at n and the cheapest wins. Because both ladder
 *     neighbors of an in-between n are always among the topK (topK is
 *     clamped to >= 2), the selected champion is never worse under
 *     the model than the worse of its neighbors.
 *  3. *Foreign fallback*: with nothing tuned for this machine at all,
 *     champions tuned on other machines are priced the same way —
 *     degraded but deterministic, never an error while the portfolio
 *     holds any champion for the benchmark.
 *
 * Every step is deterministic: candidate order is the portfolio's
 * stable key order, pricing is the pure model, and ties break on
 * (modeled seconds, |log-distance|, input size, machine name). Same
 * portfolio + same query => same config fingerprint, across runs and
 * across daemon restarts.
 */

#ifndef PETABRICKS_PORTFOLIO_DISPATCHER_H
#define PETABRICKS_PORTFOLIO_DISPATCHER_H

#include <string>

#include "benchmarks/benchmark.h"
#include "portfolio/portfolio.h"
#include "sim/machine.h"

namespace petabricks {
namespace portfolio {

/** Dispatch policy knobs. */
struct DispatchOptions
{
    /** Candidates priced in the nearest-size fallback (clamped >= 2
     * so both ladder neighbors of an in-between n compete). */
    int topK = 8;

    /**
     * Price champions tuned on *other* machines alongside the native
     * ones (instead of only as a nothing-native fallback), and skip
     * the exact-hit short circuit so everything competes under the
     * model. This is how the portability matrix harness defines the
     * best-available program for a machine: the minimum over every
     * stored champion priced on it.
     */
    bool crossMachine = false;
};

/** What the dispatcher decided and why. */
struct DispatchDecision
{
    ChampionRecord champion;

    /** "exact", "priced", or "foreign" (winner was tuned elsewhere). */
    std::string policy;

    /** Modeled seconds of the winner at the queried n (the stored
     * champion seconds for an exact hit). */
    double pricedSeconds = 0.0;
};

/** See file comment. */
class Dispatcher
{
  public:
    /** @param portfolio champion store; must outlive the dispatcher. */
    explicit Dispatcher(const ChampionPortfolio &portfolio)
        : portfolio_(portfolio)
    {}

    /**
     * Select the champion to run for @p benchmark at size @p n on
     * @p machine. @throws FatalError when the portfolio holds no
     * champion for the benchmark at all.
     */
    DispatchDecision dispatch(const apps::Benchmark &benchmark, int64_t n,
                              const sim::MachineProfile &machine,
                              const DispatchOptions &options = {}) const;

  private:
    const ChampionPortfolio &portfolio_;
};

} // namespace portfolio
} // namespace petabricks

#endif // PETABRICKS_PORTFOLIO_DISPATCHER_H
