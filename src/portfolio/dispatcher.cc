#include "portfolio/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace petabricks {
namespace portfolio {

namespace {

/** Log-scale distance between a champion's tuned size and the query —
 * the right metric for a geometric size ladder. */
double
logDistance(int64_t tunedSize, int64_t n)
{
    double a = std::log(static_cast<double>(std::max<int64_t>(tunedSize, 1)));
    double b = std::log(static_cast<double>(std::max<int64_t>(n, 1)));
    return std::abs(a - b);
}

} // namespace

DispatchDecision
Dispatcher::dispatch(const apps::Benchmark &benchmark, int64_t n,
                     const sim::MachineProfile &machine,
                     const DispatchOptions &options) const
{
    const std::string name = benchmark.name();
    const uint64_t machineFp = machine.fingerprint();

    if (!options.crossMachine) {
        if (std::optional<ChampionRecord> hit =
                portfolio_.exact(name, machineFp, n))
            return {*hit, "exact", hit->seconds};
    }

    std::vector<ChampionRecord> candidates =
        options.crossMachine ? portfolio_.allFor(name)
                             : portfolio_.championsFor(name, machineFp);
    bool foreignFallback = false;
    if (candidates.empty()) {
        candidates = portfolio_.allFor(name);
        foreignFallback = true;
    }
    if (candidates.empty())
        PB_FATAL("portfolio holds no champion for benchmark '" << name
                                                               << "'");

    // Preselect the topK nearest tuned sizes. stable_sort over the
    // portfolio's stable key order keeps the whole pipeline
    // deterministic; clamping to >= 2 guarantees both ladder
    // neighbors of an in-between n stay in contention.
    const size_t topK =
        static_cast<size_t>(std::max(options.topK, 2));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [n](const ChampionRecord &a, const ChampionRecord &b) {
                         return logDistance(a.inputSize, n) <
                                logDistance(b.inputSize, n);
                     });
    if (candidates.size() > topK)
        candidates.resize(topK);

    // Price every surviving candidate at the queried n under the pure
    // model; infeasible placements (e.g. GPU-placed champions dispatched
    // onto a machine without OpenCL) price +inf and simply lose.
    apps::EvalContextPtr ctx = benchmark.makeEvalContext(n, machine);
    const ChampionRecord *best = nullptr;
    double bestSeconds = std::numeric_limits<double>::infinity();
    for (const ChampionRecord &candidate : candidates) {
        double seconds;
        try {
            seconds = benchmark.evaluate(candidate.config, n, machine,
                                         ctx.get());
        } catch (const FatalError &) {
            seconds = std::numeric_limits<double>::infinity();
        }
        // Strict < with candidates in nearest-first stable order:
        // ties go to the nearer tuned size, then the portfolio's key
        // order — fully deterministic.
        if (best == nullptr || seconds < bestSeconds) {
            best = &candidate;
            bestSeconds = seconds;
        }
    }

    DispatchDecision decision;
    decision.champion = *best;
    decision.pricedSeconds = bestSeconds;
    decision.policy =
        foreignFallback ||
                best->machineFingerprint != machineFp
            ? "foreign"
            : "priced";
    return decision;
}

} // namespace portfolio
} // namespace petabricks
