/**
 * @file
 * ChampionPortfolio: a persistent store of tuned champions keyed
 * (benchmark, machine fingerprint, input size).
 *
 * The paper's headline claim is *portable* performance: a program
 * autotuned for one heterogeneous machine and one input size is not
 * the right program for another. Everything below the portfolio layer
 * tunes one (benchmark, n, machine) point at a time and returns one
 * champion; the portfolio is where those points accumulate into a
 * servable artifact — tuner::PortfolioTuner writes one champion per
 * rung of a size ladder, and the Dispatcher (dispatcher.h) answers
 * "which stored program should run for (benchmark, n, machine)?".
 *
 * Persistence follows the cache segment-store idiom: one kvfile per
 * champion, content checksum over every field, the cost serialized as
 * exact IEEE-754 bits (the human-readable decimal is advisory), writes
 * via temp-file + atomic rename, and a load pass that quarantines any
 * torn/corrupt file (renamed to *.quarantine) instead of failing the
 * boot. Champions are keyed by machine *content* fingerprint
 * (MachineProfile::fingerprint()), so a profile edit orphans its old
 * champions rather than serving stale programs.
 */

#ifndef PETABRICKS_PORTFOLIO_PORTFOLIO_H
#define PETABRICKS_PORTFOLIO_PORTFOLIO_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "tuner/config.h"

namespace petabricks {
namespace portfolio {

/** One tuned champion: the best configuration the search found for
 * one (benchmark, machine, input size) point, with its modeled cost. */
struct ChampionRecord
{
    std::string benchmark;
    std::string machineName;
    uint64_t machineFingerprint = 0;
    int64_t inputSize = 0;

    /** Champion cost at inputSize, preserved bit-exactly on disk. */
    double seconds = 0.0;

    tuner::Config config;

    /** Config::valueFingerprint() of config — the identity the
     * dispatch determinism guarantee is stated in. */
    uint64_t configFingerprint = 0;
};

/** Load/store accounting, for /stats and tests. */
struct PortfolioStats
{
    int64_t loaded = 0;      ///< records read back at construction
    int64_t quarantined = 0; ///< files renamed *.quarantine at load
    int64_t stored = 0;      ///< put() calls this process

    /** Champion writes that failed (ENOSPC/EIO, injected or real); the
     * in-memory record is kept and keeps serving dispatches. */
    int64_t writeFailures = 0;
};

/** See file comment. */
class ChampionPortfolio
{
  public:
    /**
     * @param dir champion directory; created if missing. Empty means
     *        memory-only (no persistence) — bench harnesses and tests.
     * @param fsck quarantine unreadable champion files at load (rename
     *        to *.quarantine); false skips them without renaming.
     *        Either way a bad file is never fatal.
     */
    explicit ChampionPortfolio(std::string dir = "", bool fsck = true);

    /**
     * Store @p record, replacing any previous champion for its
     * (benchmark, machine fingerprint, input size) key; persisted
     * immediately (temp file + atomic rename) when a directory is
     * configured. The record's configFingerprint is recomputed from
     * its config, so callers cannot store a stale identity.
     */
    void put(ChampionRecord record);

    /** Champion at exactly (benchmark, machine fingerprint, n). */
    std::optional<ChampionRecord> exact(const std::string &benchmark,
                                        uint64_t machineFingerprint,
                                        int64_t n) const;

    /** Every champion for (benchmark, machine fingerprint), ascending
     * by input size. */
    std::vector<ChampionRecord>
    championsFor(const std::string &benchmark,
                 uint64_t machineFingerprint) const;

    /** Every champion for @p benchmark on any machine, in stable
     * (machine fingerprint, input size) order. */
    std::vector<ChampionRecord>
    allFor(const std::string &benchmark) const;

    /** Every champion, in stable key order. */
    std::vector<ChampionRecord> all() const;

    size_t size() const;

    PortfolioStats stats() const;

    /** The configured directory ("" when memory-only). */
    const std::string &dir() const { return dir_; }

  private:
    using Key = std::tuple<std::string, uint64_t, int64_t>;

    void loadExisting();
    std::string championPath(const ChampionRecord &record) const;

    std::string dir_;
    bool fsck_ = true;

    mutable std::mutex mutex_;
    std::map<Key, ChampionRecord> records_;
    PortfolioStats stats_;
};

} // namespace portfolio
} // namespace petabricks

#endif // PETABRICKS_PORTFOLIO_PORTFOLIO_H
