/**
 * @file
 * TuningSession: the session-oriented autotuning API.
 *
 * The original EvolutionaryTuner::run() was a one-shot blocking loop
 * that evaluated one configuration at a time — the shape that made the
 * paper's autotuner spend an average of 5.2 hours per benchmark
 * (Figure 8). A session keeps the exact same search (paper Section
 * 5.2: asexual mutation, accept-if-better, exponentially growing test
 * sizes) but restructures the hot path around three ideas:
 *
 *  - *Batching*: candidates within a generation are independent, so
 *    the session collects them and issues one
 *    Evaluator::evaluateBatch() call per generation instead of
 *    populationSize blocking calls. Engines parallelize the batch
 *    (ModelEngine on a thread pool, EnginePool across runtime
 *    instances); because batches are order-preserving, the champion is
 *    identical to the serial search for any parallelism.
 *
 *  - *Caching*: an EvaluationCache keyed by (config fingerprint,
 *    input size) answers duplicate mutants and re-tested survivors
 *    without re-running them.
 *
 *  - *Resumability*: the session's complete search state (population,
 *    scores, generation/size cursor, RNG state, accounting) round-
 *    trips through save()/load() as a choice-file-style KvFile, so a
 *    killed search resumes where it left off and reaches the same
 *    champion as an uninterrupted run (deterministic evaluators).
 *
 * step() advances one generation; run() drives to completion; run(k)
 * spends a bounded number of steps, for interleaving tuning with other
 * work. Progress callbacks fire after every step.
 */

#ifndef PETABRICKS_TUNER_SESSION_H
#define PETABRICKS_TUNER_SESSION_H

#include <functional>
#include <string>
#include <vector>

#include "ocl/program_cache.h"
#include "tuner/evaluation_cache.h"
#include "tuner/evolution.h"

namespace petabricks {

namespace cache {
class SharedEvaluationCache;
} // namespace cache

namespace tuner {

/** Snapshot handed to progress callbacks after every step(). */
struct SessionProgress
{
    int64_t inputSize = 0;    ///< size the finished step tested at
    int generation = 0;       ///< generations completed at that size
    int generationsPerSize = 0;
    int completedSteps = 0;
    int totalSteps = 0;
    double bestSeconds = 0.0; ///< champion score at inputSize
    int64_t evaluations = 0;
    int64_t cacheHits = 0;
};

/**
 * Point-in-time view of a session's search cursor and accounting,
 * cheap to take between steps. This is what a hosting layer (the
 * service's `status` endpoint) reports without touching the search
 * state, and what tests assert on without driving a full run.
 */
struct SessionIntrospection
{
    bool done = false;
    int completedSteps = 0;
    int totalSteps = 0;
    int generation = 0;       ///< completed generations at currentInputSize
    int generationsPerSize = 0;
    int64_t currentInputSize = 0; ///< size the next step() tests at
    size_t populationSize = 0;    ///< live members (<= options cap)
    double bestSeconds = 0.0;     ///< champion score at the current size

    /** Accounting so far (mirrors TuningResult counters). */
    int64_t evaluations = 0;
    int64_t mutationsAccepted = 0;
    int64_t mutationsRejected = 0;
    int64_t cacheHits = 0;
    int64_t evaluationFailures = 0; ///< retries exhausted (see TuningResult)
    double tuningSeconds = 0.0;
    double compileSeconds = 0.0;

    /** EvaluationCache hit/miss/eviction counters. */
    EvaluationCacheStats cacheStats;

    /**
     * This session's traffic against the shared L2 cache (all zero
     * when none is attached). Session-local accounting, not
     * checkpointed: a resumed session restarts them at zero, same as
     * the L1 cache restarting cold — only modeled accounting, never
     * the champion, can tell the difference.
     */
    int64_t sharedHits = 0;
    int64_t sharedMisses = 0;
    int64_t sharedPublishes = 0;
};

/** See file comment. */
class TuningSession
{
  public:
    using ProgressCallback = std::function<void(const SessionProgress &)>;

    /**
     * @param evaluator benchmark hook (must outlive the session).
     * @param seedConfig structurally complete starting configuration;
     *        also the schema save()/load() deserializes against.
     */
    TuningSession(Evaluator &evaluator, Config seedConfig,
                  TunerOptions options);

    /** True once every generation at every input size has run. */
    bool done() const { return sizeIndex_ >= sizes_.size(); }

    /** Total step() count of a full search. */
    int totalSteps() const;

    int completedSteps() const;

    /** Input size the next step() will test at (last size if done). */
    int64_t currentInputSize() const;

    /**
     * Advance the search by one generation: on entry to a new input
     * size, re-measure the survivors there (previous scores are for
     * smaller inputs and not comparable), then mutate every member,
     * evaluate all changed children as one batch, and apply
     * accept-if-better selection and pruning.
     * @return false when the search is complete (no-op when already
     *         done).
     */
    bool step();

    /** step() until done, then return the champion. */
    TuningResult run();

    /** step() at most @p maxSteps times; returns result() — a
     * resumable snapshot, not necessarily the final champion. */
    TuningResult run(int maxSteps);

    /**
     * Current champion snapshot (best config, its score at the current
     * input size, accounting so far). Before the first step the seed
     * is reported with a score of 0.
     */
    TuningResult result() const;

    /** Register @p callback to run after every step(). */
    void onProgress(ProgressCallback callback);

    const EvaluationCache &cache() const { return cache_; }

    /**
     * Layer the process-wide L2 @p cache behind this session's private
     * L1: an L1 miss probes the L2 under @p scope (the engine's
     * cacheScope for this benchmark) before evaluating, and every
     * finite evaluation result is published back. L2 hits are promoted
     * into the L1 and are bit-identical to what the evaluator would
     * return, so attaching a shared cache never changes the champion.
     * @p cache must outlive the session; nullptr detaches. Gated on
     * options().cacheEvaluations like the L1.
     */
    void attachSharedCache(cache::SharedEvaluationCache *cache,
                           uint64_t scope);

    /** Cursor + accounting snapshot; see SessionIntrospection. */
    SessionIntrospection introspect() const;

    const TunerOptions &options() const { return options_; }

    /**
     * Checkpoint the full search state to @p path (kvfile format):
     * population with scores, size/generation cursor, RNG state, and
     * accounting. Call between steps — a progress callback is a
     * natural place.
     */
    void save(const std::string &path) const;

    /**
     * The checkpoint as a KvFile, without touching disk — callers that
     * need crash-safe persistence render this and use
     * KvFile::saveAtomic (the daemon's spool does).
     */
    KvFile checkpointKv() const;

    /**
     * Restore a checkpoint written by save(). The session must have
     * been constructed with the same seed configuration and options as
     * the saved one (validated via the seed fingerprint); the
     * evaluation and compile caches restart cold, which affects only
     * the modeled tuning-time accounting, never the champion.
     */
    void load(const std::string &path);

  private:
    struct Member
    {
        Config config;
        double seconds = 0.0; // at the current input size
    };

    /**
     * Score @p configs at @p size with caching, in-batch dedup, and
     * the Section 5.4 per-test compile accounting; one
     * evaluateBatch() call covers every config not answered by the
     * cache. Returns seconds index-aligned with @p configs.
     */
    std::vector<double> measureBatch(const std::vector<Config> &configs,
                                     int64_t size);

    void emitProgress();

    Evaluator &evaluator_;
    Config seed_;
    TunerOptions options_;
    Rng rng_;
    ocl::ProgramCache compileModel_;
    EvaluationCache cache_;
    TuningResult report_;
    std::vector<MutatorPtr> mutators_;
    std::vector<int64_t> sizes_;
    std::vector<Member> population_;
    size_t sizeIndex_ = 0;
    int generation_ = 0; // completed generations at sizes_[sizeIndex_]
    ProgressCallback progress_;

    // Shared L2 binding (see attachSharedCache).
    cache::SharedEvaluationCache *shared_ = nullptr;
    uint64_t sharedScope_ = 0;
    uint64_t sharedOwner_ = 0;
    int64_t sharedHits_ = 0;
    int64_t sharedMisses_ = 0;
    int64_t sharedPublishes_ = 0;
};

} // namespace tuner
} // namespace petabricks

#endif // PETABRICKS_TUNER_SESSION_H
