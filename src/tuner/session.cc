#include "tuner/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cache/shared_cache.h"
#include "support/error.h"
#include "support/logging.h"

namespace petabricks {
namespace tuner {

TuningSession::TuningSession(Evaluator &evaluator, Config seedConfig,
                             TunerOptions options)
    : evaluator_(evaluator), seed_(std::move(seedConfig)),
      options_(options), rng_(options.seed),
      compileModel_(options.kernelCompileSeconds, options.irCacheSavings)
{
    PB_ASSERT(options_.populationSize >= 1, "population must be >= 1");
    PB_ASSERT(options_.minInputSize >= 1 &&
                  options_.minInputSize <= options_.maxInputSize,
              "bad input size range");
    PB_ASSERT(options_.sizeGrowthFactor >= 2, "growth factor must be >= 2");
    PB_ASSERT(options_.generationsPerSize >= 1,
              "generations per size must be >= 1");

    mutators_ = generateMutators(seed_);
    PB_ASSERT(!mutators_.empty(), "config has nothing to tune");

    // Exponentially growing testing input sizes (Section 5.2).
    for (int64_t s = options_.minInputSize; s < options_.maxInputSize;
         s *= options_.sizeGrowthFactor)
        sizes_.push_back(s);
    sizes_.push_back(options_.maxInputSize);

    population_.push_back({seed_, 0.0});
}

int
TuningSession::totalSteps() const
{
    return static_cast<int>(sizes_.size()) * options_.generationsPerSize;
}

int
TuningSession::completedSteps() const
{
    return static_cast<int>(sizeIndex_) * options_.generationsPerSize +
           generation_;
}

int64_t
TuningSession::currentInputSize() const
{
    return sizes_[std::min(sizeIndex_, sizes_.size() - 1)];
}

std::vector<double>
TuningSession::measureBatch(const std::vector<Config> &configs,
                            int64_t size)
{
    const size_t count = configs.size();
    std::vector<double> seconds(count, 0.0);
    std::vector<uint64_t> fingerprints(count, 0);
    std::vector<size_t> duplicateOf(count, SIZE_MAX);
    std::vector<size_t> evalIndex; // configs that really run
    std::unordered_map<uint64_t, size_t> firstInBatch;
    const bool useCache = options_.cacheEvaluations;

    for (size_t i = 0; i < count; ++i) {
        if (!useCache) {
            evalIndex.push_back(i);
            continue;
        }
        uint64_t fp = EvaluationCache::fingerprint(configs[i]);
        fingerprints[i] = fp;
        if (std::optional<double> cached =
                cache_.lookupFingerprint(fp, size)) {
            seconds[i] = *cached;
            ++report_.cacheHits;
            continue;
        }
        // L1 miss: probe the process-wide L2 before paying for an
        // evaluation. A hit is bit-identical to what the evaluator
        // would return (deterministic per scope), so promoting it into
        // the L1 changes accounting, never the search.
        if (shared_ != nullptr) {
            if (std::optional<double> sharedValue =
                    shared_->lookup(sharedScope_, size, fp,
                                    sharedOwner_)) {
                cache_.insertFingerprint(fp, size, *sharedValue);
                seconds[i] = *sharedValue;
                ++report_.cacheHits;
                ++sharedHits_;
                continue;
            }
            ++sharedMisses_;
        }
        auto [it, inserted] = firstInBatch.emplace(fp, i);
        if (!inserted) {
            duplicateOf[i] = it->second;
            continue;
        }
        evalIndex.push_back(i);
    }

    if (!evalIndex.empty()) {
        std::vector<Config> pending;
        pending.reserve(evalIndex.size());
        for (size_t i : evalIndex)
            pending.push_back(configs[i]);

        // The generation-level batch: one evaluator call for every
        // config the cache could not answer.
        std::vector<double> measured =
            evaluator_.evaluateBatch(pending, size);
        PB_ASSERT(measured.size() == pending.size(),
                  "evaluator returned " << measured.size()
                                        << " results for a batch of "
                                        << pending.size());

        for (size_t k = 0; k < evalIndex.size(); ++k) {
            size_t i = evalIndex[k];
            // Section 5.4 accounting: each evaluation is a fresh
            // test-process run — live programs are gone, only the IR
            // cache survives. Identical kernel sources within one
            // configuration are compiled (and priced) once.
            compileModel_.endRun();
            double compile = 0.0;
            std::unordered_set<std::string> uniqueSources;
            for (const std::string &src :
                 evaluator_.kernelSources(configs[i], size))
                if (uniqueSources.insert(src).second)
                    compile += compileModel_.compile(src);
            report_.compileSeconds += compile;

            double secs = measured[k];
            ++report_.evaluations;
            if (std::isnan(secs)) {
                // The engine gave up after its retry budget: an
                // environment fault, not a property of the config.
                // Price as worst cost for this generation only — a
                // NaN must never enter the cache as a real result.
                ++report_.evaluationFailures;
                report_.tuningSeconds += compile;
                seconds[i] = std::numeric_limits<double>::infinity();
                continue;
            }
            double testing = std::isfinite(secs)
                                 ? secs * options_.trialsPerEvaluation
                                 : 0.0;
            report_.tuningSeconds += compile + testing;
            if (useCache) {
                cache_.insertFingerprint(fingerprints[i], size, secs);
                // Publish finite results for other sessions; +inf
                // (infeasible) stays in the private L1 — recomputing
                // it elsewhere is cheap and deterministic, and the
                // shared tier never has to serialize non-finite
                // values. NaN never reaches this line (above).
                if (shared_ != nullptr && std::isfinite(secs)) {
                    shared_->publish(sharedScope_, size,
                                     fingerprints[i], secs,
                                     sharedOwner_);
                    ++sharedPublishes_;
                }
            }
            seconds[i] = secs;
        }
    }

    for (size_t i = 0; i < count; ++i)
        if (duplicateOf[i] != SIZE_MAX) {
            seconds[i] = seconds[duplicateOf[i]];
            ++report_.cacheHits; // in-batch duplicate: never re-run
        }
    return seconds;
}

bool
TuningSession::step()
{
    if (done())
        return false;
    const int64_t size = sizes_[sizeIndex_];

    if (generation_ == 0) {
        // Entering a new size: scores at smaller sizes are never
        // consulted again, and survivors must be re-measured here.
        cache_.invalidateBelow(size);
        std::vector<Config> survivors;
        survivors.reserve(population_.size());
        for (const Member &member : population_)
            survivors.push_back(member.config);
        std::vector<double> scores = measureBatch(survivors, size);
        for (size_t i = 0; i < population_.size(); ++i)
            population_[i].seconds = scores[i];
    }

    // Mutate first (the RNG draws are the search trajectory), then
    // evaluate every changed child as one batch, then select — the
    // same order of draws and comparisons as the serial loop.
    const size_t parents = population_.size();
    std::vector<Config> children;
    std::vector<size_t> childParent;
    for (size_t p = 0; p < parents; ++p) {
        Config child = population_[p].config;
        // Mostly single mutations; occasionally chain several so
        // coupled choices (e.g. an algorithm switch that only pays off
        // together with a backend switch) can be crossed in one step.
        int chain = 1;
        while (chain < 4 && rng_.chance(0.35))
            ++chain;
        bool changed = false;
        for (int m = 0; m < chain; ++m) {
            const Mutator &mutator = *mutators_[static_cast<size_t>(
                rng_.uniformInt(0,
                                static_cast<int64_t>(mutators_.size()) -
                                    1))];
            changed |= mutator.apply(child, rng_, size);
        }
        if (!changed)
            continue;
        children.push_back(std::move(child));
        childParent.push_back(p);
    }

    std::vector<double> childSeconds = measureBatch(children, size);

    for (size_t k = 0; k < children.size(); ++k) {
        size_t p = childParent[k];
        // Asexual selection: the child joins the population only if it
        // outperforms the parent it was created from.
        if (childSeconds[k] < population_[p].seconds) {
            ++report_.mutationsAccepted;
            population_.push_back(
                {std::move(children[k]), childSeconds[k]});
        } else {
            ++report_.mutationsRejected;
        }
    }

    // Prune by performance.
    std::stable_sort(population_.begin(), population_.end(),
                     [](const Member &a, const Member &b) {
                         return a.seconds < b.seconds;
                     });
    if (population_.size() > static_cast<size_t>(options_.populationSize))
        population_.resize(static_cast<size_t>(options_.populationSize));

    ++generation_;
    if (generation_ >= options_.generationsPerSize) {
        PB_DEBUG("tuner size " << size << ": best "
                               << population_.front().seconds << "s");
        generation_ = 0;
        ++sizeIndex_;
    }
    emitProgress();
    return !done();
}

void
TuningSession::emitProgress()
{
    if (!progress_)
        return;
    SessionProgress progress;
    progress.inputSize =
        sizes_[sizeIndex_ > 0 && generation_ == 0 ? sizeIndex_ - 1
                                                  : sizeIndex_];
    progress.generation =
        generation_ == 0 ? options_.generationsPerSize : generation_;
    progress.generationsPerSize = options_.generationsPerSize;
    progress.completedSteps = completedSteps();
    progress.totalSteps = totalSteps();
    progress.bestSeconds = population_.front().seconds;
    progress.evaluations = report_.evaluations;
    progress.cacheHits = report_.cacheHits;
    progress_(progress);
}

TuningResult
TuningSession::run()
{
    while (step()) {
    }
    PB_ASSERT(std::isfinite(population_.front().seconds),
              "no valid configuration found");
    report_.best = population_.front().config;
    report_.bestSeconds = population_.front().seconds;
    return report_;
}

TuningResult
TuningSession::run(int maxSteps)
{
    for (int i = 0; i < maxSteps && !done(); ++i)
        step();
    // A budget that completes the search must pass the same validity
    // guard as an unbounded run (run() on a done session only checks
    // and finalizes the report).
    if (done())
        return run();
    return result();
}

TuningResult
TuningSession::result() const
{
    TuningResult snapshot = report_;
    snapshot.best = population_.front().config;
    snapshot.bestSeconds = population_.front().seconds;
    return snapshot;
}

SessionIntrospection
TuningSession::introspect() const
{
    SessionIntrospection view;
    view.done = done();
    view.completedSteps = completedSteps();
    view.totalSteps = totalSteps();
    view.generation = generation_;
    view.generationsPerSize = options_.generationsPerSize;
    view.currentInputSize = currentInputSize();
    view.populationSize = population_.size();
    view.bestSeconds = population_.front().seconds;
    view.evaluations = report_.evaluations;
    view.mutationsAccepted = report_.mutationsAccepted;
    view.mutationsRejected = report_.mutationsRejected;
    view.cacheHits = report_.cacheHits;
    view.evaluationFailures = report_.evaluationFailures;
    view.tuningSeconds = report_.tuningSeconds;
    view.compileSeconds = report_.compileSeconds;
    view.cacheStats = cache_.stats();
    view.sharedHits = sharedHits_;
    view.sharedMisses = sharedMisses_;
    view.sharedPublishes = sharedPublishes_;
    return view;
}

void
TuningSession::attachSharedCache(cache::SharedEvaluationCache *cache,
                                 uint64_t scope)
{
    shared_ = cache;
    sharedScope_ = scope;
    sharedOwner_ = cache != nullptr ? cache->registerOwner() : 0;
}

void
TuningSession::onProgress(ProgressCallback callback)
{
    progress_ = std::move(callback);
}

// ---- Checkpointing -----------------------------------------------------

namespace {

const char *const kVersionKey = "session.version";
const char *const kSchemaKey = "session.schema";

std::string
memberPrefix(size_t index)
{
    return "population." + std::to_string(index) + ".";
}

} // namespace

KvFile
TuningSession::checkpointKv() const
{
    KvFile kv;
    kv.setInt(kVersionKey, 1);
    kv.set(kSchemaKey,
           std::to_string(EvaluationCache::fingerprint(seed_)));
    // The options that shape the search trajectory: load() rejects a
    // checkpoint whose schedule disagrees with the session's, since a
    // mismatched cursor would silently corrupt or truncate the search.
    kv.setInt("session.populationSize", options_.populationSize);
    kv.setInt("session.generationsPerSize", options_.generationsPerSize);
    kv.setInt("session.minInputSize", options_.minInputSize);
    kv.setInt("session.maxInputSize", options_.maxInputSize);
    kv.setInt("session.sizeGrowthFactor", options_.sizeGrowthFactor);
    kv.setInt("session.sizeIndex", static_cast<int64_t>(sizeIndex_));
    kv.setInt("session.generation", generation_);
    kv.setInt("session.evaluations", report_.evaluations);
    kv.setInt("session.mutationsAccepted", report_.mutationsAccepted);
    kv.setInt("session.mutationsRejected", report_.mutationsRejected);
    kv.setInt("session.cacheHits", report_.cacheHits);
    kv.setInt("session.evaluationFailures", report_.evaluationFailures);
    kv.setDouble("session.tuningSeconds", report_.tuningSeconds);
    kv.setDouble("session.compileSeconds", report_.compileSeconds);

    // The twister's full state streams as text, which is what makes
    // the resumed mutation sequence identical to the uninterrupted one.
    std::ostringstream rngState;
    rngState << rng_.engine();
    kv.set("session.rng", rngState.str());

    kv.setInt("session.population",
              static_cast<int64_t>(population_.size()));
    for (size_t i = 0; i < population_.size(); ++i) {
        const std::string prefix = memberPrefix(i);
        kv.setDouble(prefix + "seconds", population_[i].seconds);
        KvFile values = population_[i].config.toKv();
        for (const std::string &key : values.keys())
            kv.set(prefix + key, values.get(key));
    }
    return kv;
}

void
TuningSession::save(const std::string &path) const
{
    checkpointKv().save(path);
}

void
TuningSession::load(const std::string &path)
{
    KvFile kv = KvFile::load(path);
    if (kv.getIntOr(kVersionKey, -1) != 1)
        PB_FATAL("'" << path << "' is not a TuningSession checkpoint");
    if (kv.get(kSchemaKey) !=
        std::to_string(EvaluationCache::fingerprint(seed_)))
        PB_FATAL("checkpoint '"
                 << path
                 << "' was saved for a different seed configuration");
    if (kv.getInt("session.populationSize") != options_.populationSize ||
        kv.getInt("session.generationsPerSize") !=
            options_.generationsPerSize ||
        kv.getInt("session.minInputSize") != options_.minInputSize ||
        kv.getInt("session.maxInputSize") != options_.maxInputSize ||
        kv.getInt("session.sizeGrowthFactor") != options_.sizeGrowthFactor)
        PB_FATAL("checkpoint '"
                 << path
                 << "' was saved under different tuner options (search "
                    "schedule mismatch)");

    // From here on the checkpoint's *content* is being trusted; a
    // truncated or hand-damaged file is a user-input problem, so every
    // violation raises a clean FatalError rather than tripping an
    // internal-invariant assert.
    int64_t sizeIndex = kv.getInt("session.sizeIndex");
    int64_t generation = kv.getInt("session.generation");
    if (sizeIndex < 0 || sizeIndex > static_cast<int64_t>(sizes_.size()))
        PB_FATAL("checkpoint '" << path << "' size index " << sizeIndex
                                << " out of range");
    if (generation < 0 || generation >= options_.generationsPerSize)
        PB_FATAL("checkpoint '" << path << "' generation " << generation
                                << " out of range");
    sizeIndex_ = static_cast<size_t>(sizeIndex);
    generation_ = static_cast<int>(generation);

    report_ = TuningResult{};
    report_.evaluations = kv.getInt("session.evaluations");
    report_.mutationsAccepted = kv.getInt("session.mutationsAccepted");
    report_.mutationsRejected = kv.getInt("session.mutationsRejected");
    report_.cacheHits = kv.getInt("session.cacheHits");
    // Absent in pre-fault-tolerance checkpoints: default, don't fail.
    report_.evaluationFailures =
        kv.getIntOr("session.evaluationFailures", 0);
    report_.tuningSeconds = kv.getDouble("session.tuningSeconds");
    report_.compileSeconds = kv.getDouble("session.compileSeconds");

    std::istringstream rngState(kv.get("session.rng"));
    rngState >> rng_.engine();
    if (rngState.fail())
        PB_FATAL("checkpoint '" << path << "' has a corrupt RNG state");

    int64_t count = kv.getInt("session.population");
    if (count < 1)
        PB_FATAL("checkpoint '" << path << "' population is empty");
    population_.clear();
    for (int64_t i = 0; i < count; ++i) {
        const std::string prefix = memberPrefix(static_cast<size_t>(i));
        KvFile values;
        for (const std::string &key : kv.keys())
            if (key.rfind(prefix, 0) == 0)
                values.set(key.substr(prefix.size()), kv.get(key));
        Member member;
        member.config = seed_;
        member.config.loadValues(values);
        member.seconds = values.getDouble("seconds");
        population_.push_back(std::move(member));
    }

    // A resumed search is a fresh process: memoized evaluations and
    // live JIT programs are gone. Re-deriving them costs only modeled
    // accounting time; the champion is unaffected.
    cache_.clear();
    compileModel_.endRun();
}

} // namespace tuner
} // namespace petabricks
