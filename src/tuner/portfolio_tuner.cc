#include "tuner/portfolio_tuner.h"

#include <algorithm>

#include "engine/execution_engine.h"
#include "support/error.h"
#include "tuner/session.h"

namespace petabricks {
namespace tuner {

std::vector<int64_t>
PortfolioTuner::sizeLadder(int64_t minSize, int64_t maxSize,
                           int growthFactor)
{
    if (minSize < 1 || maxSize < minSize)
        PB_FATAL("invalid portfolio size ladder [" << minSize << ", "
                                                   << maxSize << "]");
    if (growthFactor < 2)
        PB_FATAL("portfolio ladder growth factor must be >= 2 (got "
                 << growthFactor << ")");
    std::vector<int64_t> sizes;
    for (int64_t size = minSize; size < maxSize;
         size *= growthFactor) {
        sizes.push_back(size);
        // Overflow guard: a rung whose next step wraps just ends the
        // geometric part; maxSize below still closes the ladder.
        if (size > maxSize / growthFactor)
            break;
    }
    sizes.push_back(maxSize);
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

std::vector<PortfolioRung>
PortfolioTuner::tune(const apps::Benchmark &benchmark,
                     const sim::MachineProfile &machine,
                     const PortfolioTunerOptions &options)
{
    const int64_t minSize =
        options.minSize > 0 ? options.minSize : benchmark.minTuningSize();
    const int64_t maxSize = options.maxSize > 0
                                ? options.maxSize
                                : benchmark.testingInputSize();
    std::vector<int64_t> sizes = options.sizes;
    if (sizes.empty()) {
        sizes = sizeLadder(minSize, maxSize, options.growthFactor);
    } else {
        std::sort(sizes.begin(), sizes.end());
        sizes.erase(std::unique(sizes.begin(), sizes.end()),
                    sizes.end());
        if (sizes.front() < 1)
            PB_FATAL("portfolio rung sizes must be positive");
    }

    engine::ModelEngine engine(machine);
    const uint64_t scope = engine.cacheScope(benchmark);

    std::vector<PortfolioRung> rungs;
    rungs.reserve(sizes.size());
    for (int64_t rungSize : sizes) {
        // Per-rung search: same seed and knobs at every rung, with the
        // size window pinned so the session's own exponential schedule
        // tops out exactly at this rung. The engine layers the
        // machine's compile-model parameters on top, as everywhere.
        TunerOptions tunerOptions = options.tuner;
        engine.configureTuner(tunerOptions);
        tunerOptions.maxInputSize = rungSize;
        tunerOptions.minInputSize =
            std::min(tunerOptions.minInputSize, rungSize);

        engine::EngineEvaluator evaluator(benchmark, engine);
        TuningSession session(evaluator, benchmark.seedConfig(),
                              tunerOptions);
        if (sharedCache_ != nullptr)
            session.attachSharedCache(sharedCache_, scope);
        TuningResult result = session.run();
        SessionIntrospection view = session.introspect();

        portfolio::ChampionRecord record;
        record.benchmark = benchmark.name();
        record.machineName = machine.name;
        record.machineFingerprint = machine.fingerprint();
        record.inputSize = rungSize;
        record.seconds = result.bestSeconds;
        record.config = result.best;
        portfolio_.put(record);

        PortfolioRung rung;
        rung.inputSize = rungSize;
        rung.champion = std::move(record);
        // put() recomputed the stored fingerprint; mirror it here so
        // callers see the identity the portfolio serves.
        rung.champion.configFingerprint =
            rung.champion.config.valueFingerprint();
        rung.sharedHits = view.sharedHits;
        rung.sharedPublishes = view.sharedPublishes;
        rungs.push_back(std::move(rung));
    }
    return rungs;
}

} // namespace tuner
} // namespace petabricks
