/**
 * @file
 * PortfolioTuner: the multi-size tuning driver that fills a
 * ChampionPortfolio.
 *
 * One TuningSession produces one champion for one target input size.
 * The paper's input-sensitivity argument (and the dispatch layer built
 * on it) needs a champion *per size*: this driver runs a ladder of
 * TuningSessions over a geometric schedule of input sizes on one
 * machine, storing each rung's champion into the portfolio keyed
 * (benchmark, machine fingerprint, rung size).
 *
 * Rungs share work two ways: every rung's session walks its own
 * exponential size schedule up from the same floor (optimal
 * substructure, Section 5.2 — small-size levels keep governing as
 * larger sizes are explored), and when a SharedEvaluationCache is
 * attached all rungs publish into the same (benchmark, machine) scope,
 * so rung k+1 re-prices the sizes rung k already visited as L2 hits.
 * The search is deterministic per rung (fixed seed), so re-tuning the
 * same ladder reproduces identical champions.
 */

#ifndef PETABRICKS_TUNER_PORTFOLIO_TUNER_H
#define PETABRICKS_TUNER_PORTFOLIO_TUNER_H

#include <cstdint>
#include <vector>

#include "benchmarks/benchmark.h"
#include "portfolio/portfolio.h"
#include "sim/machine.h"
#include "tuner/evolution.h"

namespace petabricks {

namespace cache {
class SharedEvaluationCache;
} // namespace cache

namespace tuner {

/** Ladder + per-rung search knobs. */
struct PortfolioTunerOptions
{
    /**
     * Explicit rung sizes (ascending, deduplicated by the driver).
     * Empty means a geometric ladder from minSize to maxSize.
     */
    std::vector<int64_t> sizes;

    /** Ladder floor; 0 means the benchmark's minTuningSize(). */
    int64_t minSize = 0;

    /** Ladder ceiling; 0 means the benchmark's testingInputSize(). */
    int64_t maxSize = 0;

    /** Geometric growth between rungs (>= 2). */
    int growthFactor = 4;

    /** Search knobs applied at every rung (population, generations,
     * seed, ...); the engine layers its compile-model parameters on
     * top and the driver pins the size window per rung. */
    TunerOptions tuner;
};

/** One rung's outcome: the champion now stored in the portfolio. */
struct PortfolioRung
{
    int64_t inputSize = 0;
    portfolio::ChampionRecord champion;

    /** This rung's traffic against the shared L2 cache. */
    int64_t sharedHits = 0;
    int64_t sharedPublishes = 0;
};

/** See file comment. */
class PortfolioTuner
{
  public:
    /**
     * @param portfolio champion store tuned rungs are put() into.
     * @param sharedCache optional L2 shared across rungs (and across
     *        sessions/daemons); nullptr tunes without one.
     */
    explicit PortfolioTuner(portfolio::ChampionPortfolio &portfolio,
                            cache::SharedEvaluationCache *sharedCache =
                                nullptr)
        : portfolio_(portfolio), sharedCache_(sharedCache)
    {}

    /** The geometric size schedule: minSize, minSize*growth, ...,
     * always ending exactly at maxSize. */
    static std::vector<int64_t> sizeLadder(int64_t minSize,
                                           int64_t maxSize,
                                           int growthFactor);

    /**
     * Tune @p benchmark on @p machine at every rung of the schedule,
     * storing one champion per rung. Returns the rungs in ascending
     * size order.
     */
    std::vector<PortfolioRung>
    tune(const apps::Benchmark &benchmark,
         const sim::MachineProfile &machine,
         const PortfolioTunerOptions &options = {});

  private:
    portfolio::ChampionPortfolio &portfolio_;
    cache::SharedEvaluationCache *sharedCache_ = nullptr;
};

} // namespace tuner
} // namespace petabricks

#endif // PETABRICKS_TUNER_PORTFOLIO_TUNER_H
