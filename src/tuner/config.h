/**
 * @file
 * The autotuner's configuration representation (paper Section 5.1).
 *
 * A configuration holds two structure kinds:
 *
 *  - *Selectors* make algorithmic choices that can differ by input
 *    size: a selector s is cutoffs C = [c1..c(m-1)] with algorithms
 *    A = [a1..am], and SELECT(input, s) = a_i such that
 *    c_i > size(input) >= c_(i-1) (c_0 = 0, c_m = inf). Selectors let
 *    the tuner build poly-algorithms that switch technique at recursive
 *    call sites.
 *
 *  - *Tunables* are bounded positive integers: OpenCL local work
 *    sizes, sequential/parallel cutoffs, GPU-CPU ratios (eighths),
 *    split sizes, and user-defined parameters.
 *
 * Configurations serialize to the flat key/value *choice configuration
 * file* that the compiled program consumes (Figure 3).
 */

#ifndef PETABRICKS_TUNER_CONFIG_H
#define PETABRICKS_TUNER_CONFIG_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/kvfile.h"

namespace petabricks {
namespace tuner {

/** Number of input-size levels every selector provides (Section 5.3). */
inline constexpr int kSelectorLevels = 12;

/** An input-size-dispatched algorithmic choice. */
class Selector
{
  public:
    Selector() = default;

    /**
     * @param name key prefix in the config file.
     * @param algorithmCount size of the discrete choice set.
     * @param defaultAlgorithm initial choice for all input sizes.
     */
    Selector(std::string name, int algorithmCount,
             int defaultAlgorithm = 0);

    const std::string &name() const { return name_; }
    int algorithmCount() const { return algorithmCount_; }

    /** The SELECT runtime function. */
    int select(int64_t inputSize) const;

    /** Number of levels (algorithm entries); cutoffs are levels()-1. */
    size_t levels() const { return algorithms_.size(); }

    const std::vector<int64_t> &cutoffs() const { return cutoffs_; }
    const std::vector<int> &algorithms() const { return algorithms_; }

    /** @{ Mutation primitives used by the selector mutators. */
    void insertLevel(int64_t cutoff, int algorithm);
    void removeLevel(size_t level);
    void setAlgorithm(size_t level, int algorithm);
    void setCutoff(size_t index, int64_t value);
    /** @} */

    /** Write into @p kv under this selector's key prefix. */
    void save(KvFile &kv) const;

    /** Read back a selector saved by save(). */
    static Selector load(const KvFile &kv, const std::string &name,
                         int algorithmCount);

    bool operator==(const Selector &other) const = default;

  private:
    void checkInvariants() const;

    std::string name_;
    int algorithmCount_ = 1;
    std::vector<int64_t> cutoffs_;   // ascending, size = levels-1
    std::vector<int> algorithms_;    // size = levels
};

/** A bounded integer tunable parameter. */
struct Tunable
{
    std::string name;
    int64_t minValue = 1;
    int64_t maxValue = 1;
    int64_t value = 1;

    /**
     * True for parameters compared against input sizes (cutoffs, split
     * sizes): mutators scale these lognormally; others are resampled
     * uniformly (Section 5.2).
     */
    bool sizeLike = false;

    int64_t
    clamp(int64_t v) const
    {
        return std::min(maxValue, std::max(minValue, v));
    }

    bool operator==(const Tunable &other) const = default;
};

/** A full choice configuration: selectors + tunables. */
class Config
{
  public:
    /** Add a selector (name must be unique). */
    void addSelector(Selector selector);

    /** Add a tunable (name must be unique). */
    void addTunable(Tunable tunable);

    bool hasSelector(const std::string &name) const;
    Selector &selector(const std::string &name);
    const Selector &selector(const std::string &name) const;

    bool hasTunable(const std::string &name) const;
    Tunable &tunable(const std::string &name);
    const Tunable &tunable(const std::string &name) const;

    /** Convenience: current value of tunable @p name. */
    int64_t
    tunableValue(const std::string &name) const
    {
        return tunable(name).value;
    }

    // ---- Index-based access (the model-mode fast path) ----------------
    //
    // Selectors and tunables are stored sorted by name, so a position
    // resolved once against one configuration stays valid for every
    // structurally identical configuration (all candidates of a tuning
    // run share the seed's structure; mutators only change values).
    // Evaluation contexts resolve names to indices once per batch and
    // the per-config hot loop uses O(1) lookups with no string
    // construction.

    size_t selectorCount() const { return selectors_.size(); }
    size_t tunableCount() const { return tunables_.size(); }

    /** Position of selector @p name in sorted-name order; fatal if
     * missing. */
    size_t selectorIndex(const std::string &name) const;

    /** Position of tunable @p name in sorted-name order; fatal if
     * missing. */
    size_t tunableIndex(const std::string &name) const;

    const Selector &
    selectorAt(size_t index) const
    {
        PB_ASSERT(index < selectors_.size(),
                  "selector index " << index << " out of range");
        return selectors_[index].second;
    }

    const Tunable &
    tunableAt(size_t index) const
    {
        PB_ASSERT(index < tunables_.size(),
                  "tunable index " << index << " out of range");
        return tunables_[index].second;
    }

    /** Convenience: current value of the tunable at @p index. */
    int64_t tunableValueAt(size_t index) const
    {
        return tunableAt(index).value;
    }

    std::vector<std::string> selectorNames() const;
    std::vector<std::string> tunableNames() const;

    /** Serialize to the choice configuration file format. */
    KvFile toKv() const;

    /**
     * Deserialize values into a structurally identical config (this
     * config provides the schema: names, bounds, algorithm counts).
     */
    void loadValues(const KvFile &kv);

    /**
     * 64-bit hash of this configuration's *values* (selector levels
     * and tunable settings): equal configurations hash equal across
     * processes — the EvaluationCache key and the TuningSession
     * checkpoint schema check. The hash is a sequential FNV-1a, so it
     * is stable only because selectors and tunables iterate in
     * sorted-name (std::map) order, independent of insertion order.
     * Cheaper than hashing the serialized toKv() text, which matters
     * on the tuner's hot path.
     */
    uint64_t valueFingerprint() const;

    /**
     * log10 of the size of the search space this configuration spans
     * (Figure 8's "# possible configs"): every selector contributes
     * algorithmCount^levels * maxInput^(levels-1) (cutoff placements),
     * every tunable its range size.
     */
    double log10SpaceSize(int64_t maxInputSize) const;

    bool operator==(const Config &other) const = default;

  private:
    // Sorted by name (the old std::map iteration order, on which the
    // serialization format and valueFingerprint() depend), but with the
    // O(1) positional access the evaluation fast path needs and cheaper
    // copies for the mutation-heavy tuner loop.
    std::vector<std::pair<std::string, Selector>> selectors_;
    std::vector<std::pair<std::string, Tunable>> tunables_;
};

} // namespace tuner
} // namespace petabricks

#endif // PETABRICKS_TUNER_CONFIG_H
