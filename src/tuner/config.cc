#include "tuner/config.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace {

/** lower_bound over a name-sorted entry vector. */
template <typename Entries>
auto
findEntry(Entries &entries, const std::string &name)
{
    return std::lower_bound(entries.begin(), entries.end(), name,
                            [](const auto &entry, const std::string &key) {
                                return entry.first < key;
                            });
}

} // namespace

namespace petabricks {
namespace tuner {

Selector::Selector(std::string name, int algorithmCount,
                   int defaultAlgorithm)
    : name_(std::move(name)), algorithmCount_(algorithmCount)
{
    PB_ASSERT(algorithmCount >= 1, "selector needs at least 1 algorithm");
    PB_ASSERT(defaultAlgorithm >= 0 && defaultAlgorithm < algorithmCount,
              "default algorithm out of range");
    algorithms_.push_back(defaultAlgorithm);
}

void
Selector::checkInvariants() const
{
    PB_ASSERT(algorithms_.size() == cutoffs_.size() + 1,
              "selector '" << name_ << "' level/cutoff mismatch");
    for (size_t i = 1; i < cutoffs_.size(); ++i)
        PB_ASSERT(cutoffs_[i - 1] <= cutoffs_[i],
                  "selector '" << name_ << "' cutoffs out of order");
    for (int alg : algorithms_)
        PB_ASSERT(alg >= 0 && alg < algorithmCount_,
                  "selector '" << name_ << "' algorithm out of range");
}

int
Selector::select(int64_t inputSize) const
{
    // SELECT(input, s) = alpha_i s.t. c_i > size >= c_(i-1),
    // with c_0 = 0 and c_m = infinity.
    size_t i = 0;
    while (i < cutoffs_.size() && inputSize >= cutoffs_[i])
        ++i;
    return algorithms_[i];
}

void
Selector::insertLevel(int64_t cutoff, int algorithm)
{
    PB_ASSERT(algorithm >= 0 && algorithm < algorithmCount_,
              "algorithm out of range");
    PB_ASSERT(cutoff >= 1, "cutoff must be positive");
    if (levels() >= static_cast<size_t>(kSelectorLevels))
        return; // full: every transform offers at most 12 levels
    size_t pos = 0;
    while (pos < cutoffs_.size() && cutoffs_[pos] < cutoff)
        ++pos;
    cutoffs_.insert(cutoffs_.begin() + static_cast<int64_t>(pos), cutoff);
    // The new algorithm governs sizes >= cutoff up to the next level.
    algorithms_.insert(
        algorithms_.begin() + static_cast<int64_t>(pos) + 1, algorithm);
    checkInvariants();
}

void
Selector::removeLevel(size_t level)
{
    PB_ASSERT(level < algorithms_.size(), "level out of range");
    if (algorithms_.size() == 1)
        return; // must keep at least one algorithm
    algorithms_.erase(algorithms_.begin() + static_cast<int64_t>(level));
    size_t cut = level == 0 ? 0 : level - 1;
    cutoffs_.erase(cutoffs_.begin() + static_cast<int64_t>(cut));
    checkInvariants();
}

void
Selector::setAlgorithm(size_t level, int algorithm)
{
    PB_ASSERT(level < algorithms_.size(), "level out of range");
    PB_ASSERT(algorithm >= 0 && algorithm < algorithmCount_,
              "algorithm out of range");
    algorithms_[level] = algorithm;
}

void
Selector::setCutoff(size_t index, int64_t value)
{
    PB_ASSERT(index < cutoffs_.size(), "cutoff index out of range");
    PB_ASSERT(value >= 1, "cutoff must be positive");
    int64_t lo = index == 0 ? 1 : cutoffs_[index - 1];
    int64_t hi = index + 1 < cutoffs_.size()
                     ? cutoffs_[index + 1]
                     : std::numeric_limits<int64_t>::max();
    cutoffs_[index] = std::min(hi, std::max(lo, value));
    checkInvariants();
}

void
Selector::save(KvFile &kv) const
{
    kv.setIntList(name_ + ".cutoffs", cutoffs_);
    std::vector<int64_t> algs(algorithms_.begin(), algorithms_.end());
    kv.setIntList(name_ + ".algorithms", algs);
}

Selector
Selector::load(const KvFile &kv, const std::string &name,
               int algorithmCount)
{
    Selector s(name, algorithmCount);
    s.cutoffs_ = kv.getIntList(name + ".cutoffs");
    s.algorithms_.clear();
    for (int64_t a : kv.getIntList(name + ".algorithms")) {
        if (a < 0 || a >= algorithmCount)
            PB_FATAL("selector '" << name << "' algorithm " << a
                                  << " out of range");
        s.algorithms_.push_back(static_cast<int>(a));
    }
    if (s.algorithms_.size() != s.cutoffs_.size() + 1)
        PB_FATAL("selector '" << name << "' malformed in config file");
    s.checkInvariants();
    return s;
}

void
Config::addSelector(Selector selector)
{
    std::string name = selector.name();
    auto it = findEntry(selectors_, name);
    PB_ASSERT(it == selectors_.end() || it->first != name,
              "duplicate selector '" << name << "'");
    selectors_.emplace(it, std::move(name), std::move(selector));
}

void
Config::addTunable(Tunable tunable)
{
    PB_ASSERT(tunable.minValue <= tunable.value &&
                  tunable.value <= tunable.maxValue,
              "tunable '" << tunable.name << "' value out of bounds");
    std::string name = tunable.name;
    auto it = findEntry(tunables_, name);
    PB_ASSERT(it == tunables_.end() || it->first != name,
              "duplicate tunable '" << name << "'");
    tunables_.emplace(it, std::move(name), std::move(tunable));
}

bool
Config::hasSelector(const std::string &name) const
{
    auto it = findEntry(selectors_, name);
    return it != selectors_.end() && it->first == name;
}

Selector &
Config::selector(const std::string &name)
{
    auto it = findEntry(selectors_, name);
    PB_ASSERT(it != selectors_.end() && it->first == name,
              "no selector '" << name << "'");
    return it->second;
}

const Selector &
Config::selector(const std::string &name) const
{
    auto it = findEntry(selectors_, name);
    PB_ASSERT(it != selectors_.end() && it->first == name,
              "no selector '" << name << "'");
    return it->second;
}

bool
Config::hasTunable(const std::string &name) const
{
    auto it = findEntry(tunables_, name);
    return it != tunables_.end() && it->first == name;
}

Tunable &
Config::tunable(const std::string &name)
{
    auto it = findEntry(tunables_, name);
    PB_ASSERT(it != tunables_.end() && it->first == name,
              "no tunable '" << name << "'");
    return it->second;
}

const Tunable &
Config::tunable(const std::string &name) const
{
    auto it = findEntry(tunables_, name);
    PB_ASSERT(it != tunables_.end() && it->first == name,
              "no tunable '" << name << "'");
    return it->second;
}

size_t
Config::selectorIndex(const std::string &name) const
{
    auto it = findEntry(selectors_, name);
    PB_ASSERT(it != selectors_.end() && it->first == name,
              "no selector '" << name << "'");
    return static_cast<size_t>(it - selectors_.begin());
}

size_t
Config::tunableIndex(const std::string &name) const
{
    auto it = findEntry(tunables_, name);
    PB_ASSERT(it != tunables_.end() && it->first == name,
              "no tunable '" << name << "'");
    return static_cast<size_t>(it - tunables_.begin());
}

std::vector<std::string>
Config::selectorNames() const
{
    std::vector<std::string> names;
    for (const auto &kv : selectors_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
Config::tunableNames() const
{
    std::vector<std::string> names;
    for (const auto &kv : tunables_)
        names.push_back(kv.first);
    return names;
}

KvFile
Config::toKv() const
{
    KvFile kv;
    for (const auto &[name, selector] : selectors_)
        selector.save(kv);
    for (const auto &[name, tunable] : tunables_)
        kv.setInt(name, tunable.value);
    return kv;
}

void
Config::loadValues(const KvFile &kv)
{
    for (auto &[name, selector] : selectors_)
        selector = Selector::load(kv, name, selector.algorithmCount());
    for (auto &[name, tunable] : tunables_) {
        int64_t v = kv.getInt(name);
        if (v < tunable.minValue || v > tunable.maxValue)
            PB_FATAL("tunable '" << name << "' value " << v
                                 << " outside [" << tunable.minValue
                                 << ", " << tunable.maxValue << "]");
        tunable.value = v;
    }
}

uint64_t
Config::valueFingerprint() const
{
    // FNV-1a over the structure in map (= sorted-name) order, with
    // separator words so adjacent fields cannot alias. Stable across
    // processes, which the checkpoint schema check relies on.
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (8 * byte)) & 0xff;
            hash *= 1099511628211ull;
        }
    };
    auto mixString = [&hash](const std::string &text) {
        for (unsigned char c : text) {
            hash ^= c;
            hash *= 1099511628211ull;
        }
    };
    for (const auto &[name, selector] : selectors_) {
        mixString(name);
        mix(0xc07f0ff5u);
        for (int64_t cutoff : selector.cutoffs())
            mix(static_cast<uint64_t>(cutoff));
        mix(0xa19051u);
        for (int algorithm : selector.algorithms())
            mix(static_cast<uint64_t>(algorithm));
    }
    for (const auto &[name, tunable] : tunables_) {
        mixString(name);
        mix(static_cast<uint64_t>(tunable.value));
    }
    return hash;
}

double
Config::log10SpaceSize(int64_t maxInputSize) const
{
    double logSize = 0.0;
    double logMax = std::log10(static_cast<double>(maxInputSize));
    for (const auto &[name, selector] : selectors_) {
        // Up to kSelectorLevels algorithm slots and kSelectorLevels-1
        // free cutoff placements in [1, maxInput].
        logSize += kSelectorLevels *
                   std::log10(static_cast<double>(
                       selector.algorithmCount()));
        logSize += (kSelectorLevels - 1) * logMax;
    }
    for (const auto &[name, tunable] : tunables_) {
        double range = static_cast<double>(tunable.maxValue -
                                           tunable.minValue + 1);
        logSize += std::log10(range);
    }
    return logSize;
}

} // namespace tuner
} // namespace petabricks
