/**
 * @file
 * The evolutionary autotuning algorithm (paper Section 5.2).
 *
 * A population of candidate configurations is continually expanded by
 * mutation and pruned by performance. Mutation is asexual (one parent
 * per child) and a child is admitted only if it outperforms the parent
 * it was created from. Testing input sizes grow exponentially, which
 * exploits optimal substructure: selectors tuned at small sizes keep
 * governing the small-size levels as larger sizes are explored.
 *
 * The tuner also keeps the Section 5.4 accounting: every test run is a
 * fresh process whose OpenCL kernels must be JIT-compiled, softened by
 * the IR cache. This models why autotuning took an average of 5.2 hours
 * on the paper's systems (Figure 8) even though individual tests are
 * fast, and why small-input tests are skipped.
 *
 * The search itself lives in TuningSession (tuner/session.h); this
 * header keeps the evaluation surface (Evaluator, TunerOptions,
 * TuningResult) and the deprecated EvolutionaryTuner shim.
 */

#ifndef PETABRICKS_TUNER_EVOLUTION_H
#define PETABRICKS_TUNER_EVOLUTION_H

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ocl/program_cache.h"
#include "tuner/mutators.h"

namespace petabricks {
namespace tuner {

/** Benchmark-provided evaluation hook. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /**
     * Modeled execution seconds of @p config at @p inputSize; return
     * +inf for configurations that are invalid or miss an accuracy
     * target (variable-accuracy benchmarks).
     */
    virtual double evaluate(const Config &config, int64_t inputSize) = 0;

    /**
     * Evaluate a generation's worth of independent configurations at
     * one input size. The TuningSession issues exactly one call per
     * generation; overriding this is how an evaluator exploits the
     * candidates' independence (engine::EngineEvaluator forwards to
     * ExecutionEngine::measureBatch). Results must be index-aligned
     * with @p configs and identical to what the serial loop would
     * produce. Default: loop over evaluate().
     */
    virtual std::vector<double>
    evaluateBatch(std::span<const Config> configs, int64_t inputSize)
    {
        std::vector<double> seconds;
        seconds.reserve(configs.size());
        for (const Config &config : configs)
            seconds.push_back(evaluate(config, inputSize));
        return seconds;
    }

    /**
     * Source identities of the OpenCL kernels @p config JIT-compiles,
     * for the tuning-time model. Default: none (CPU-only benchmark).
     */
    virtual std::vector<std::string>
    kernelSources(const Config &config, int64_t inputSize)
    {
        (void)config;
        (void)inputSize;
        return {};
    }
};

/** Search knobs. */
struct TunerOptions
{
    int populationSize = 8;
    int generationsPerSize = 6;

    /** Smallest tested input size; smaller tests are skipped entirely
     * because kernel compilation dominates them (Section 5.4). */
    int64_t minInputSize = 64;
    int64_t maxInputSize = 1 << 20;
    int sizeGrowthFactor = 4; // exponential testing-size growth

    /** Timing repetitions per evaluation. */
    int trialsPerEvaluation = 2;

    uint64_t seed = 20130316; // deterministic by default

    /** JIT compile model parameters (from the machine profile). */
    double kernelCompileSeconds = 1.6;
    double irCacheSavings = 0.55;

    /**
     * Memoize evaluation results by (config fingerprint, input size)
     * so duplicate mutants and re-tested survivors never re-run.
     * Off replicates the legacy one-evaluation-per-candidate
     * accounting exactly; the champion is identical either way for
     * deterministic evaluators.
     */
    bool cacheEvaluations = true;
};

/** Outcome of a tuning run. */
struct TuningResult
{
    Config best;
    double bestSeconds = 0.0;

    /** Modeled wall-clock spent autotuning (tests + JIT compiles). */
    double tuningSeconds = 0.0;
    double compileSeconds = 0.0;

    int64_t evaluations = 0;
    int64_t mutationsAccepted = 0;
    int64_t mutationsRejected = 0;

    /** Evaluations answered from the EvaluationCache (including
     * in-batch duplicates) instead of being re-run. */
    int64_t cacheHits = 0;

    /** Evaluations that failed even after the engine's retry budget
     * (the NaN sentinel). Each was priced as worst cost for its
     * generation only and never entered the EvaluationCache. */
    int64_t evaluationFailures = 0;
};

class TuningSession;

/**
 * See file comment.
 *
 * @deprecated EvolutionaryTuner is a thin compatibility shim over
 * TuningSession (tuner/session.h), which adds batched generation
 * evaluation, result caching, progress callbacks, and save()/load()
 * checkpointing. New code should construct a TuningSession directly;
 * this wrapper will be removed in the next release.
 */
class EvolutionaryTuner
{
  public:
    /**
     * @param evaluator benchmark hook (must outlive the tuner).
     * @param seedConfig structurally complete starting configuration.
     */
    EvolutionaryTuner(Evaluator &evaluator, Config seedConfig,
                      TunerOptions options);
    ~EvolutionaryTuner();

    /** Run the search and return the champion. */
    TuningResult run();

  private:
    std::unique_ptr<TuningSession> session_;
};

} // namespace tuner
} // namespace petabricks

#endif // PETABRICKS_TUNER_EVOLUTION_H
