#include "tuner/evaluation_cache.h"

namespace petabricks {
namespace tuner {

uint64_t
EvaluationCache::fingerprint(const Config &config)
{
    return config.valueFingerprint();
}

std::optional<double>
EvaluationCache::lookup(const Config &config, int64_t inputSize)
{
    return lookupFingerprint(fingerprint(config), inputSize);
}

std::optional<double>
EvaluationCache::lookupFingerprint(uint64_t fingerprint,
                                   int64_t inputSize)
{
    auto it = entries_.find({inputSize, fingerprint});
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

void
EvaluationCache::insert(const Config &config, int64_t inputSize,
                        double seconds)
{
    insertFingerprint(fingerprint(config), inputSize, seconds);
}

void
EvaluationCache::insertFingerprint(uint64_t fingerprint,
                                   int64_t inputSize, double seconds)
{
    entries_[{inputSize, fingerprint}] = seconds;
    ++stats_.insertions;
}

void
EvaluationCache::invalidateBelow(int64_t inputSize)
{
    auto end = entries_.lower_bound({inputSize, 0});
    stats_.invalidated +=
        static_cast<int64_t>(std::distance(entries_.begin(), end));
    entries_.erase(entries_.begin(), end);
}

void
EvaluationCache::clear()
{
    entries_.clear();
}

} // namespace tuner
} // namespace petabricks
