#include "tuner/evaluation_cache.h"

namespace petabricks {
namespace tuner {

uint64_t
EvaluationCache::fingerprint(const Config &config)
{
    return config.valueFingerprint();
}

std::optional<double>
EvaluationCache::lookup(const Config &config, int64_t inputSize)
{
    return lookupFingerprint(fingerprint(config), inputSize);
}

std::optional<double>
EvaluationCache::lookupFingerprint(uint64_t fingerprint,
                                   int64_t inputSize)
{
    auto it = entries_.find({inputSize, fingerprint});
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

void
EvaluationCache::insert(const Config &config, int64_t inputSize,
                        double seconds)
{
    insertFingerprint(fingerprint(config), inputSize, seconds);
}

void
EvaluationCache::insertFingerprint(uint64_t fingerprint,
                                   int64_t inputSize, double seconds)
{
    auto [it, inserted] = entries_.insert_or_assign(
        {inputSize, fingerprint}, seconds);
    (void)it;
    if (inserted)
        stats_.bytes += kEntryBytes;
    ++stats_.insertions;
    if (maxEntries_ > 0 && entries_.size() > maxEntries_) {
        // Evict from the front: map order is size-first, so the
        // smallest-size entries go first — they are also the ones the
        // growing test-size schedule is least likely to consult again.
        while (entries_.size() > maxEntries_) {
            entries_.erase(entries_.begin());
            ++stats_.evictions;
            stats_.bytes -= kEntryBytes;
        }
    }
}

void
EvaluationCache::setMaxEntries(size_t maxEntries)
{
    maxEntries_ = maxEntries;
    if (maxEntries_ > 0) {
        while (entries_.size() > maxEntries_) {
            entries_.erase(entries_.begin());
            ++stats_.evictions;
            stats_.bytes -= kEntryBytes;
        }
    }
}

void
EvaluationCache::invalidateBelow(int64_t inputSize)
{
    auto end = entries_.lower_bound({inputSize, 0});
    int64_t dropped =
        static_cast<int64_t>(std::distance(entries_.begin(), end));
    stats_.invalidated += dropped;
    stats_.bytes -= static_cast<size_t>(dropped) * kEntryBytes;
    entries_.erase(entries_.begin(), end);
}

void
EvaluationCache::clear()
{
    stats_.bytes = 0;
    entries_.clear();
}

} // namespace tuner
} // namespace petabricks
