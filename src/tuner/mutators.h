/**
 * @file
 * Mutation operators (paper Section 5.2).
 *
 * "Mutators are functions that create a new algorithm configuration by
 * changing an existing configuration. The set of mutator functions is
 * different for each program, and is generated fully automatically with
 * the static analysis information extracted by the compiler."
 *
 * Three families, as in the paper:
 *  - selector manipulation: add, remove, or change a level of a
 *    specific selector;
 *  - cutoff/size scaling: values compared against input sizes are
 *    scaled by a lognormal factor (halving as likely as doubling);
 *  - tunable manipulation: non-size tunables are resampled uniformly.
 */

#ifndef PETABRICKS_TUNER_MUTATORS_H
#define PETABRICKS_TUNER_MUTATORS_H

#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tuner/config.h"

namespace petabricks {
namespace tuner {

/** A configuration mutation operator. */
class Mutator
{
  public:
    virtual ~Mutator() = default;

    /**
     * Mutate @p config in place.
     * @param currentInputSize the size the tuner is currently testing;
     *        new cutoffs are seeded near it.
     * @return false if the mutation was a no-op (e.g. removing a level
     *         from a single-level selector).
     */
    virtual bool apply(Config &config, Rng &rng,
                       int64_t currentInputSize) const = 0;

    virtual std::string name() const = 0;
};

using MutatorPtr = std::unique_ptr<Mutator>;

/** Add a level to a selector at a lognormal-scaled cutoff. */
MutatorPtr makeSelectorAddLevel(std::string selectorName);

/** Remove a random level from a selector. */
MutatorPtr makeSelectorRemoveLevel(std::string selectorName);

/** Re-draw the algorithm of a random level uniformly. */
MutatorPtr makeSelectorChangeAlgorithm(std::string selectorName);

/** Scale a random cutoff of a selector lognormally. */
MutatorPtr makeSelectorScaleCutoff(std::string selectorName);

/** Scale a size-like tunable lognormally. */
MutatorPtr makeTunableLognormal(std::string tunableName);

/** Resample a categorical tunable uniformly from its range. */
MutatorPtr makeTunableUniform(std::string tunableName);

/**
 * Generate the full mutator set for @p config — the automatic
 * per-program generation step: four mutators per selector plus one per
 * tunable (lognormal for size-like, uniform otherwise).
 */
std::vector<MutatorPtr> generateMutators(const Config &config);

} // namespace tuner
} // namespace petabricks

#endif // PETABRICKS_TUNER_MUTATORS_H
