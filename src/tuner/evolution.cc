#include "tuner/evolution.h"

#include "tuner/session.h"

namespace petabricks {
namespace tuner {

// Deprecated shim: the search lives in TuningSession. Kept for one
// release so existing callers migrate at their own pace.

EvolutionaryTuner::EvolutionaryTuner(Evaluator &evaluator,
                                     Config seedConfig,
                                     TunerOptions options)
    : session_(std::make_unique<TuningSession>(
          evaluator, std::move(seedConfig), options))
{}

EvolutionaryTuner::~EvolutionaryTuner() = default;

TuningResult
EvolutionaryTuner::run()
{
    return session_->run();
}

} // namespace tuner
} // namespace petabricks
