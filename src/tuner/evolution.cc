#include "tuner/evolution.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/logging.h"

namespace petabricks {
namespace tuner {

EvolutionaryTuner::EvolutionaryTuner(Evaluator &evaluator,
                                     Config seedConfig,
                                     TunerOptions options)
    : evaluator_(evaluator), seed_(std::move(seedConfig)),
      options_(options), rng_(options.seed),
      compileModel_(options.kernelCompileSeconds, options.irCacheSavings)
{
    PB_ASSERT(options_.populationSize >= 1, "population must be >= 1");
    PB_ASSERT(options_.minInputSize >= 1 &&
                  options_.minInputSize <= options_.maxInputSize,
              "bad input size range");
    PB_ASSERT(options_.sizeGrowthFactor >= 2, "growth factor must be >= 2");
}

double
EvolutionaryTuner::measure(const Config &config, int64_t size)
{
    // Each measurement is a fresh test-process run: live programs are
    // gone, only the IR cache survives (Section 5.4).
    compileModel_.endRun();
    double compile = 0.0;
    for (const std::string &src : evaluator_.kernelSources(config, size))
        compile += compileModel_.compile(src);
    report_.compileSeconds += compile;

    double seconds = evaluator_.evaluate(config, size);
    ++report_.evaluations;
    double testing = std::isfinite(seconds)
                         ? seconds * options_.trialsPerEvaluation
                         : 0.0;
    report_.tuningSeconds += compile + testing;
    return seconds;
}

TuningResult
EvolutionaryTuner::run()
{
    std::vector<MutatorPtr> mutators = generateMutators(seed_);
    PB_ASSERT(!mutators.empty(), "config has nothing to tune");

    std::vector<Candidate> population;
    population.push_back({seed_, 0.0});

    // Exponentially growing testing input sizes.
    std::vector<int64_t> sizes;
    for (int64_t s = options_.minInputSize; s < options_.maxInputSize;
         s *= options_.sizeGrowthFactor)
        sizes.push_back(s);
    sizes.push_back(options_.maxInputSize);

    for (int64_t size : sizes) {
        // Re-measure survivors at the new size (previous scores are for
        // smaller inputs and not comparable).
        for (Candidate &candidate : population)
            candidate.seconds = measure(candidate.config, size);

        for (int gen = 0; gen < options_.generationsPerSize; ++gen) {
            size_t parents = population.size();
            for (size_t p = 0; p < parents; ++p) {
                Candidate child = population[p];
                // Mostly single mutations; occasionally chain several so
                // coupled choices (e.g. an algorithm switch that only
                // pays off together with a backend switch) can be
                // crossed in one step.
                int chain = 1;
                while (chain < 4 && rng_.chance(0.35))
                    ++chain;
                bool changed = false;
                for (int m = 0; m < chain; ++m) {
                    const Mutator &mutator =
                        *mutators[static_cast<size_t>(rng_.uniformInt(
                            0,
                            static_cast<int64_t>(mutators.size()) - 1))];
                    changed |= mutator.apply(child.config, rng_, size);
                }
                if (!changed)
                    continue;
                child.seconds = measure(child.config, size);
                // Asexual selection: the child joins the population
                // only if it outperforms its parent.
                if (child.seconds < population[p].seconds) {
                    ++report_.mutationsAccepted;
                    population.push_back(std::move(child));
                } else {
                    ++report_.mutationsRejected;
                }
            }
            // Prune by performance.
            std::stable_sort(population.begin(), population.end(),
                             [](const Candidate &a, const Candidate &b) {
                                 return a.seconds < b.seconds;
                             });
            if (population.size() >
                static_cast<size_t>(options_.populationSize))
                population.resize(
                    static_cast<size_t>(options_.populationSize));
        }
        PB_DEBUG("tuner size " << size << ": best "
                               << population.front().seconds << "s");
    }

    PB_ASSERT(std::isfinite(population.front().seconds),
              "no valid configuration found");
    report_.best = population.front().config;
    report_.bestSeconds = population.front().seconds;
    return report_;
}

} // namespace tuner
} // namespace petabricks
