/**
 * @file
 * Memoized evaluation results for the tuning session.
 *
 * The evolutionary search re-encounters configurations constantly:
 * survivors are compared against their children for a whole
 * generation block, and mutation chains frequently produce a mutant
 * identical to one already scored (a selector level removed and
 * re-added, a tunable resampled to its old value). Every one of those
 * repeats used to be a full evaluation — in real mode, a full
 * compile-and-execute test process (the paper's 5.2-hour Figure 8
 * accounting). The cache keys results by (configuration fingerprint,
 * input size), so a result is reused only where it is valid: scores at
 * different input sizes are never comparable (Section 5.2 re-measures
 * survivors at every size step), which is also why the session drops
 * entries below the current size as the testing size grows.
 *
 * Reusing a memoized score changes nothing for deterministic
 * evaluators (model mode), which is what keeps the cached search
 * bit-identical to the uncached one.
 */

#ifndef PETABRICKS_TUNER_EVALUATION_CACHE_H
#define PETABRICKS_TUNER_EVALUATION_CACHE_H

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "tuner/config.h"

namespace petabricks {
namespace tuner {

/** Hit/miss/eviction/byte accounting, exposed via TuningSession and
 * tests. Counters are cumulative; bytes is the live footprint. */
struct EvaluationCacheStats
{
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t invalidated = 0; // entries dropped by invalidateBelow()
    int64_t evictions = 0;   // entries dropped by the capacity bound
    size_t bytes = 0;        // nominal in-memory footprint right now
};

/** See file comment. */
class EvaluationCache
{
  public:
    /** Nominal in-memory cost of one entry (key + value + map node
     * overhead); the unit stats().bytes is accounted in. */
    static constexpr size_t kEntryBytes = 64;

    /**
     * Stable 64-bit identity of a configuration's *values*
     * (Config::valueFingerprint): equal configurations hash equal
     * across processes, which save()/load() relies on to validate
     * checkpoints.
     */
    static uint64_t fingerprint(const Config &config);

    /** Memoized seconds for @p config at @p inputSize, counting the
     * hit or miss. */
    std::optional<double> lookup(const Config &config, int64_t inputSize);

    /** lookup() when the caller already fingerprinted the config. */
    std::optional<double> lookupFingerprint(uint64_t fingerprint,
                                            int64_t inputSize);

    /** Memoize @p seconds (+inf for infeasible is a valid entry: a
     * duplicate of a known-bad mutant should not re-run either). */
    void insert(const Config &config, int64_t inputSize, double seconds);

    /** insert() when the caller already fingerprinted the config. */
    void insertFingerprint(uint64_t fingerprint, int64_t inputSize,
                           double seconds);

    /**
     * Drop every entry with input size < @p inputSize: scores at
     * smaller sizes can never be consulted again once the testing size
     * has grown past them, so the cache stays bounded by one size
     * level.
     */
    void invalidateBelow(int64_t inputSize);

    /** Drop all entries (stats are cumulative and survive). */
    void clear();

    /**
     * Bound the cache to @p maxEntries entries (0 = unbounded, the
     * default). When an insert pushes past the bound, smallest-size
     * entries are evicted first — the growing test-size schedule
     * consults them least — and counted in stats().evictions.
     */
    void setMaxEntries(size_t maxEntries);

    size_t size() const { return entries_.size(); }

    const EvaluationCacheStats &stats() const { return stats_; }

  private:
    // Ordered by size first so invalidateBelow() is a range erase.
    std::map<std::pair<int64_t, uint64_t>, double> entries_;
    size_t maxEntries_ = 0;
    EvaluationCacheStats stats_;
};

} // namespace tuner
} // namespace petabricks

#endif // PETABRICKS_TUNER_EVALUATION_CACHE_H
