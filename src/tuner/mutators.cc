#include "tuner/mutators.h"

#include "support/error.h"

namespace petabricks {
namespace tuner {

namespace {

class SelectorAddLevel : public Mutator
{
  public:
    explicit SelectorAddLevel(std::string name) : name_(std::move(name)) {}

    bool
    apply(Config &config, Rng &rng, int64_t currentInputSize) const override
    {
        Selector &s = config.selector(name_);
        if (s.levels() >= static_cast<size_t>(kSelectorLevels))
            return false;
        // Seed the new cutoff near the size under test, jittered
        // lognormally so repeated applications spread out.
        int64_t cutoff =
            rng.lognormalScale(std::max<int64_t>(currentInputSize, 2));
        int algorithm =
            static_cast<int>(rng.uniformInt(0, s.algorithmCount() - 1));
        s.insertLevel(cutoff, algorithm);
        return true;
    }

    std::string name() const override { return "add-level:" + name_; }

  private:
    std::string name_;
};

class SelectorRemoveLevel : public Mutator
{
  public:
    explicit SelectorRemoveLevel(std::string name) : name_(std::move(name))
    {}

    bool
    apply(Config &config, Rng &rng, int64_t) const override
    {
        Selector &s = config.selector(name_);
        if (s.levels() <= 1)
            return false;
        s.removeLevel(static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(s.levels()) - 1)));
        return true;
    }

    std::string name() const override { return "remove-level:" + name_; }

  private:
    std::string name_;
};

class SelectorChangeAlgorithm : public Mutator
{
  public:
    explicit SelectorChangeAlgorithm(std::string name)
        : name_(std::move(name))
    {}

    bool
    apply(Config &config, Rng &rng, int64_t) const override
    {
        Selector &s = config.selector(name_);
        if (s.algorithmCount() <= 1)
            return false;
        size_t level = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(s.levels()) - 1));
        // Uniform redraw (paper: "values choosing from a set of
        // choices ... are chosen uniform randomly when mutated").
        s.setAlgorithm(level, static_cast<int>(rng.uniformInt(
                                  0, s.algorithmCount() - 1)));
        return true;
    }

    std::string name() const override { return "change-alg:" + name_; }

  private:
    std::string name_;
};

class SelectorScaleCutoff : public Mutator
{
  public:
    explicit SelectorScaleCutoff(std::string name) : name_(std::move(name))
    {}

    bool
    apply(Config &config, Rng &rng, int64_t) const override
    {
        Selector &s = config.selector(name_);
        if (s.cutoffs().empty())
            return false;
        size_t index = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(s.cutoffs().size()) - 1));
        // Lognormal scaling: halving as likely as doubling.
        s.setCutoff(index, rng.lognormalScale(s.cutoffs()[index]));
        return true;
    }

    std::string name() const override { return "scale-cutoff:" + name_; }

  private:
    std::string name_;
};

class TunableLognormal : public Mutator
{
  public:
    explicit TunableLognormal(std::string name) : name_(std::move(name)) {}

    bool
    apply(Config &config, Rng &rng, int64_t) const override
    {
        Tunable &t = config.tunable(name_);
        int64_t next = t.clamp(rng.lognormalScale(std::max<int64_t>(
            t.value, 1)));
        if (next == t.value)
            return false;
        t.value = next;
        return true;
    }

    std::string name() const override { return "lognormal:" + name_; }

  private:
    std::string name_;
};

class TunableUniform : public Mutator
{
  public:
    explicit TunableUniform(std::string name) : name_(std::move(name)) {}

    bool
    apply(Config &config, Rng &rng, int64_t) const override
    {
        Tunable &t = config.tunable(name_);
        if (t.maxValue == t.minValue)
            return false;
        t.value = rng.uniformInt(t.minValue, t.maxValue);
        return true;
    }

    std::string name() const override { return "uniform:" + name_; }

  private:
    std::string name_;
};

} // namespace

MutatorPtr
makeSelectorAddLevel(std::string selectorName)
{
    return std::make_unique<SelectorAddLevel>(std::move(selectorName));
}

MutatorPtr
makeSelectorRemoveLevel(std::string selectorName)
{
    return std::make_unique<SelectorRemoveLevel>(std::move(selectorName));
}

MutatorPtr
makeSelectorChangeAlgorithm(std::string selectorName)
{
    return std::make_unique<SelectorChangeAlgorithm>(
        std::move(selectorName));
}

MutatorPtr
makeSelectorScaleCutoff(std::string selectorName)
{
    return std::make_unique<SelectorScaleCutoff>(std::move(selectorName));
}

MutatorPtr
makeTunableLognormal(std::string tunableName)
{
    return std::make_unique<TunableLognormal>(std::move(tunableName));
}

MutatorPtr
makeTunableUniform(std::string tunableName)
{
    return std::make_unique<TunableUniform>(std::move(tunableName));
}

std::vector<MutatorPtr>
generateMutators(const Config &config)
{
    std::vector<MutatorPtr> mutators;
    for (const std::string &name : config.selectorNames()) {
        mutators.push_back(makeSelectorAddLevel(name));
        mutators.push_back(makeSelectorRemoveLevel(name));
        mutators.push_back(makeSelectorChangeAlgorithm(name));
        mutators.push_back(makeSelectorScaleCutoff(name));
    }
    for (const std::string &name : config.tunableNames()) {
        if (config.tunable(name).sizeLike)
            mutators.push_back(makeTunableLognormal(name));
        else
            mutators.push_back(makeTunableUniform(name));
    }
    return mutators;
}

} // namespace tuner
} // namespace petabricks
