#include "service/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "support/error.h"

namespace petabricks {
namespace service {

namespace {

std::string
toLower(std::string text)
{
    for (char &c : text)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return text;
}

std::string
toUpper(std::string text)
{
    for (char &c : text)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return text;
}

std::string
trim(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return std::string();
    size_t end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

const char *
reasonPhrase(int status)
{
    switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
    }
}

} // namespace

std::string
HttpRequest::param(const std::string &key, const std::string &fallback) const
{
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
}

int64_t
HttpRequest::intParam(const std::string &key, int64_t fallback) const
{
    auto it = query.find(key);
    if (it == query.end())
        return fallback;
    const std::string &text = it->second;
    char *end = nullptr;
    long long value = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size())
        PB_FATAL("query parameter '" << key << "' is not an integer: '"
                                     << text << "'");
    return static_cast<int64_t>(value);
}

std::string
HttpResponse::serialize() const
{
    std::ostringstream out;
    out << "HTTP/1.1 " << status << ' ' << reasonPhrase(status) << "\r\n"
        << "Content-Type: " << contentType << "\r\n"
        << "Content-Length: " << body.size() << "\r\n";
    if (retryAfterSeconds > 0)
        out << "Retry-After: " << retryAfterSeconds << "\r\n";
    out << "Connection: " << (keepAlive ? "keep-alive" : "close")
        << "\r\n\r\n"
        << body;
    return out.str();
}

HttpResponse
HttpResponse::ok(std::string body)
{
    HttpResponse response;
    response.body = std::move(body);
    return response;
}

HttpResponse
HttpResponse::error(int status, std::string message)
{
    HttpResponse response;
    response.status = status;
    if (!message.empty() && message.back() != '\n')
        message += '\n';
    response.body = "error = " + std::move(message);
    return response;
}

std::string
urlDecode(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < text.size() &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
            out += static_cast<char>(
                std::stoi(text.substr(i + 1, 2), nullptr, 16));
            i += 2;
        } else {
            out += c;
        }
    }
    return out;
}

std::map<std::string, std::string>
parseQuery(const std::string &query)
{
    std::map<std::string, std::string> params;
    size_t pos = 0;
    while (pos < query.size()) {
        size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        std::string pair = query.substr(pos, amp - pos);
        if (!pair.empty()) {
            size_t eq = pair.find('=');
            if (eq == std::string::npos)
                params[urlDecode(pair)] = "";
            else
                params[urlDecode(pair.substr(0, eq))] =
                    urlDecode(pair.substr(eq + 1));
        }
        pos = amp + 1;
    }
    return params;
}

void
HttpParser::feed(const char *data, size_t size)
{
    if (failed_)
        return;
    // No size check here: a burst of pipelined requests may legally
    // exceed any per-request bound, and each gets popped (and its
    // bytes trimmed) by next(). The limits live in next(), where
    // "incomplete request" and "oversized request" can be told apart —
    // an unparseable tail is bounded there at maxBytes_ of headers
    // plus maxBytes_ of body.
    buffer_.append(data, size);
}

std::optional<HttpRequest>
HttpParser::next()
{
    if (failed_)
        return std::nullopt;
    size_t headerEnd = buffer_.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        if (buffer_.size() > maxBytes_)
            fail("headers exceed size limit");
        return std::nullopt;
    }
    if (headerEnd > maxBytes_) {
        // The terminator exists but the headers alone bust the
        // per-request cap (possible when a whole oversized request
        // arrives within one read burst).
        fail("headers exceed size limit");
        return std::nullopt;
    }

    HttpRequest request;
    // ---- Request line -------------------------------------------------
    size_t lineEnd = buffer_.find("\r\n");
    std::string line = buffer_.substr(0, lineEnd);
    std::istringstream requestLine(line);
    std::string version;
    if (!(requestLine >> request.method >> request.target >> version) ||
        version.rfind("HTTP/1.", 0) != 0) {
        fail("malformed request line: '" + line + "'");
        return std::nullopt;
    }
    request.method = toUpper(request.method);

    size_t qmark = request.target.find('?');
    if (qmark == std::string::npos) {
        request.path = urlDecode(request.target);
    } else {
        request.path = urlDecode(request.target.substr(0, qmark));
        request.query = parseQuery(request.target.substr(qmark + 1));
    }

    // ---- Headers ------------------------------------------------------
    size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        size_t end = buffer_.find("\r\n", pos);
        std::string header = buffer_.substr(pos, end - pos);
        pos = end + 2;
        size_t colon = header.find(':');
        if (colon == std::string::npos) {
            fail("malformed header: '" + header + "'");
            return std::nullopt;
        }
        request.headers[toLower(trim(header.substr(0, colon)))] =
            trim(header.substr(colon + 1));
    }

    // ---- Body ---------------------------------------------------------
    size_t bodySize = 0;
    auto it = request.headers.find("content-length");
    if (it != request.headers.end()) {
        char *end = nullptr;
        long long parsed = std::strtoll(it->second.c_str(), &end, 10);
        if (it->second.empty() || *end != '\0' || parsed < 0) {
            fail("bad Content-Length: '" + it->second + "'");
            return std::nullopt;
        }
        bodySize = static_cast<size_t>(parsed);
        if (bodySize > maxBytes_) {
            fail("body exceeds size limit");
            return std::nullopt;
        }
    }
    size_t total = headerEnd + 4 + bodySize;
    if (buffer_.size() < total)
        return std::nullopt; // body still in flight
    request.body = buffer_.substr(headerEnd + 4, bodySize);
    buffer_.erase(0, total);
    return request;
}

void
HttpParser::fail(const std::string &reason)
{
    failed_ = true;
    failReason_ = reason;
    buffer_.clear();
}

} // namespace service
} // namespace petabricks
