#include "service/server.h"

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <poll.h>
#include <vector>

#include "benchmarks/registry.h"
#include "portfolio/dispatcher.h"
#include "sim/machine.h"
#include "support/error.h"
#include "support/logging.h"
#include "tuner/portfolio_tuner.h"

namespace petabricks {
namespace service {

namespace {

using Clock = std::chrono::steady_clock;

double
microsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
}

/** Render a status snapshot as the `status` endpoint's body. */
KvFile
introspectionToKv(const tuner::SessionIntrospection &view)
{
    KvFile kv;
    kv.setInt("status.done", view.done ? 1 : 0);
    kv.setInt("status.completedSteps", view.completedSteps);
    kv.setInt("status.totalSteps", view.totalSteps);
    kv.setInt("status.generation", view.generation);
    kv.setInt("status.generationsPerSize", view.generationsPerSize);
    kv.setInt("status.currentInputSize", view.currentInputSize);
    kv.setInt("status.populationSize",
              static_cast<int64_t>(view.populationSize));
    kv.setDouble("status.bestSeconds", view.bestSeconds);
    kv.setInt("status.evaluations", view.evaluations);
    kv.setInt("status.mutationsAccepted", view.mutationsAccepted);
    kv.setInt("status.mutationsRejected", view.mutationsRejected);
    kv.setInt("status.cacheHits", view.cacheHits);
    kv.setDouble("status.tuningSeconds", view.tuningSeconds);
    kv.setDouble("status.compileSeconds", view.compileSeconds);
    kv.setInt("cache.hits", view.cacheStats.hits);
    kv.setInt("cache.misses", view.cacheStats.misses);
    kv.setInt("cache.insertions", view.cacheStats.insertions);
    kv.setInt("cache.invalidated", view.cacheStats.invalidated);
    kv.setInt("cache.evictions", view.cacheStats.evictions);
    kv.setInt("cache.bytes",
              static_cast<int64_t>(view.cacheStats.bytes));
    // This session's traffic against the process-wide L2 tier (all
    // zero when the daemon runs without a shared cache).
    kv.setInt("cache.sharedHits", view.sharedHits);
    kv.setInt("cache.sharedMisses", view.sharedMisses);
    kv.setInt("cache.sharedPublishes", view.sharedPublishes);
    return kv;
}

const std::string &
requiredParam(const HttpRequest &request, const std::string &key)
{
    auto it = request.query.find(key);
    if (it == request.query.end() || it->second.empty())
        PB_FATAL("missing required parameter '" << key << "'");
    return it->second;
}

/**
 * Commands that can wait on a session's busy flag or on residency
 * capacity (condition-variable waits inside SessionTable). They run on
 * the worker pool, never inline on the I/O thread — a champion request
 * against a mid-step session must stall its own connection, not the
 * daemon's accept/read loop.
 */
bool
routesToWorker(const std::string &path)
{
    return path == "/step" || path == "/create" || path == "/champion" ||
           path == "/resume" || path == "/stop" ||
           path == "/portfolio/tune" || path == "/portfolio/champion";
}

/** 16-digit lower-case hex, the wire form for every fingerprint. */
std::string
hex16(uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
    return buffer;
}

/** Render one stored champion under @p prefix (fingerprints as hex,
 * cost both human-readable and bit-exact, config values inline). */
void
championToKv(KvFile &kv, const std::string &prefix,
             const portfolio::ChampionRecord &record)
{
    kv.set(prefix + "benchmark", record.benchmark);
    kv.set(prefix + "machine", record.machineName);
    kv.set(prefix + "machineFingerprint",
           hex16(record.machineFingerprint));
    kv.setInt(prefix + "inputSize", record.inputSize);
    kv.setDouble(prefix + "seconds", record.seconds);
    kv.set(prefix + "secondsBits",
           hex16(std::bit_cast<uint64_t>(record.seconds)));
    kv.set(prefix + "configFingerprint",
           hex16(record.configFingerprint));
}

const std::string &
requiredBodyField(const KvFile &body, const std::string &key)
{
    if (!body.has(key))
        PB_FATAL("missing required body field '" << key << "'");
    return body.get(key);
}

} // namespace

namespace {

/** Build the server's shared cache (maxBytes = 0 disables it) and
 * inject it into the table options the SessionTable is built from. */
std::unique_ptr<cache::SharedEvaluationCache>
makeSharedCache(ServerOptions &options)
{
    options.table.sharedCache = nullptr;
    if (options.cache.maxBytes == 0)
        return nullptr;
    auto cache =
        std::make_unique<cache::SharedEvaluationCache>(options.cache);
    options.table.sharedCache = cache.get();
    return cache;
}

} // namespace

TuningServer::TuningServer(ServerOptions options)
    : options_(std::move(options)), sharedCache_(makeSharedCache(options_)),
      portfolio_(std::make_unique<portfolio::ChampionPortfolio>(
          options_.portfolioDir, options_.portfolioFsck)),
      table_(options_.table)
{
    PB_ASSERT(options_.workers >= 1, "need at least one worker");
}

TuningServer::~TuningServer()
{
    stop();
}

void
TuningServer::start()
{
    PB_ASSERT(!running_.load(), "server already started");
    listener_ = std::make_unique<net::TcpListener>(options_.host,
                                                   options_.port);
    port_ = listener_->port();
    stopping_.store(false);
    running_.store(true);
    startTime_ = std::chrono::steady_clock::now();

    ioThread_ = std::thread([this] { ioLoop(); });

    // The worker pool: park one parallelFor() on a pump thread, with
    // every index running the drain loop until shutdown — ThreadPool's
    // fork-join surface reused as a resident worker pool.
    pool_ = std::make_unique<ThreadPool>(options_.workers);
    const size_t width = static_cast<size_t>(pool_->threadCount());
    pumpThread_ = std::thread([this, width] {
        pool_->parallelFor(width, [this](size_t) { workerLoop(); });
    });
    PB_INFORM("tunerd listening on " << options_.host << ":" << port_);
}

void
TuningServer::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    wakeup_.notify();
    if (ioThread_.joinable())
        ioThread_.join();
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        workCv_.notify_all();
    }
    if (pumpThread_.joinable())
        pumpThread_.join();
    pool_.reset();
    connections_.clear();
    listener_.reset();
}

void
TuningServer::drain()
{
    if (draining_.exchange(true))
        return; // a concurrent drain already owns the protocol
    if (!running_.load())
        return;
    PB_INFORM("tunerd: draining — finishing in-flight commands");
    {
        // New worker commands are now rejected at admission (503), so
        // the queue can only shrink; wait for it to empty and for the
        // last busy worker to finish.
        std::unique_lock<std::mutex> lock(workMutex_);
        drainCv_.wait(lock, [this] {
            return workQueue_.empty() && busyWorkers_ == 0;
        });
    }
    // Every session is idle now: flush them all so a restart resumes
    // from exactly the drained state, and persist the shared cache so
    // the restarted daemon warm-starts with this run's results.
    table_.checkpointAll();
    if (sharedCache_ != nullptr)
        sharedCache_->flush();
    PB_INFORM("tunerd: drained; all sessions checkpointed");
    stop();
}

void
TuningServer::workerLoop()
{
    for (;;) {
        WorkItem item;
        {
            std::unique_lock<std::mutex> lock(workMutex_);
            workCv_.wait(lock, [this] {
                return stopping_.load() || !workQueue_.empty();
            });
            if (stopping_.load())
                return; // queued work is abandoned; sessions are
                        // checkpointed at their last completed step
            item = std::move(workQueue_.front());
            workQueue_.pop_front();
            ++busyWorkers_;
        }
        HttpResponse response;
        const int64_t deadline = options_.requestDeadlineSeconds;
        const auto queuedSeconds =
            std::chrono::duration_cast<std::chrono::seconds>(
                Clock::now() - item.enqueued)
                .count();
        if (deadline > 0 && queuedSeconds >= deadline) {
            // The client has usually timed out and retried by now;
            // dispatching would run the same command twice.
            ++deadlineRejections_;
            response = HttpResponse::error(
                503, "request spent too long queued (deadline "
                         + std::to_string(deadline) + "s)");
            response.retryAfterSeconds = 1;
            recordCommand(item.request.path.empty()
                              ? std::string("?")
                              : item.request.path.substr(1),
                          response.status, 0.0);
        } else {
            response = timedDispatch(item.request);
        }
        if (item.connId != 0) {
            std::lock_guard<std::mutex> lock(doneMutex_);
            doneQueue_.push_back({item.connId, response.serialize()});
        }
        {
            std::lock_guard<std::mutex> lock(workMutex_);
            --busyWorkers_;
        }
        drainCv_.notify_all();
        wakeup_.notify();
    }
}

void
TuningServer::pumpRequests(uint64_t connId, Connection &connection)
{
    while (!connection.awaitingWorker) {
        std::optional<HttpRequest> request = connection.parser.next();
        if (!request)
            break;
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++requestsServed_;
        }
        if (routesToWorker(request->path)) {
            // Admission control before the queue sees the request:
            // drains and full queues shed load with a retry hint
            // rather than buffering doomed work. Only this (I/O)
            // thread pushes, so the depth check cannot race a push.
            bool draining = draining_.load();
            bool full;
            {
                std::lock_guard<std::mutex> lock(workMutex_);
                full = workQueue_.size() >= options_.maxQueueDepth;
            }
            if (draining || full) {
                ++backpressureRejections_;
                HttpResponse busy = HttpResponse::error(
                    503, draining
                             ? "draining: not accepting new commands"
                             : "worker queue is full");
                busy.retryAfterSeconds = draining ? 5 : 1;
                connection.outbox += busy.serialize();
                recordCommand(request->path.empty()
                                  ? std::string("?")
                                  : request->path.substr(1),
                              busy.status, 0.0);
                continue;
            }
            if (request->path == "/step" &&
                request->param("wait", "1") == "0") {
                // Detached step: acknowledge now, step in the
                // background, let `status` polling observe progress.
                HttpResponse accepted;
                accepted.status = 202;
                accepted.body = "accepted = 1\nsession = " +
                                request->param("session") + "\n";
                connection.outbox += accepted.serialize();
                std::lock_guard<std::mutex> lock(workMutex_);
                workQueue_.push_back({0, std::move(*request), Clock::now()});
                workCv_.notify_one();
            } else {
                // Blocking session command: the connection waits for
                // the worker's response; the I/O loop moves on.
                connection.awaitingWorker = true;
                std::lock_guard<std::mutex> lock(workMutex_);
                workQueue_.push_back(
                    {connId, std::move(*request), Clock::now()});
                workCv_.notify_one();
            }
            continue;
        }
        connection.outbox += timedDispatch(*request).serialize();
    }
    if (connection.parser.failed()) {
        connection.outbox +=
            HttpResponse::error(400, connection.parser.failReason())
                .serialize();
        connection.closeAfterWrite = true;
    }
}

HttpResponse
TuningServer::timedDispatch(const HttpRequest &request)
{
    Clock::time_point start = Clock::now();
    HttpResponse response;
    try {
        response = dispatch(request);
    } catch (const FatalError &error) {
        // User-level errors: unknown ids are 404, everything else
        // (bad options, malformed bodies, missing params) is 400.
        const std::string what = error.what();
        int status = (what.find("unknown session") != std::string::npos ||
                      what.find("no spooled session") != std::string::npos)
                         ? 404
                         : 400;
        response = HttpResponse::error(status, what);
    } catch (const std::exception &error) {
        response = HttpResponse::error(500, error.what());
    }
    std::string command =
        request.path.empty() ? std::string("?") : request.path.substr(1);
    recordCommand(command, response.status, microsSince(start));
    return response;
}

void
TuningServer::recordCommand(const std::string &command, int status,
                            double micros)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    CommandStats &stats = commandStats_[command];
    ++stats.count;
    if (status >= 400)
        ++stats.errors;
    stats.totalMicros += micros;
    stats.maxMicros = std::max(stats.maxMicros, micros);
}

HttpResponse
TuningServer::dispatch(const HttpRequest &request)
{
    const std::string &path = request.path;

    if (path == "/ping")
        return HttpResponse::ok("pong = 1\n");

    if (path == "/healthz") {
        // Liveness + load probe: answers inline on the I/O thread, so
        // it stays responsive while every worker is busy — that is
        // precisely when a health check matters.
        KvFile kv;
        {
            std::lock_guard<std::mutex> lock(workMutex_);
            kv.setInt("health.queueDepth",
                      static_cast<int64_t>(workQueue_.size()));
            kv.setInt("health.busyWorkers", busyWorkers_);
        }
        kv.setInt("health.maxQueueDepth",
                  static_cast<int64_t>(options_.maxQueueDepth));
        kv.setInt("health.draining", draining_.load() ? 1 : 0);
        kv.setInt("health.backpressureRejections",
                  backpressureRejections_.load());
        kv.setInt("health.deadlineRejections", deadlineRejections_.load());
        SessionTableStats table = table_.stats();
        kv.setInt("health.residentSessions",
                  static_cast<int64_t>(table.resident));
        kv.setInt("health.totalSessions",
                  static_cast<int64_t>(table.total));
        kv.setInt("health.spoolQuarantined", table.spoolQuarantined);
        kv.setInt("health.evaluationFailures", table.evaluationFailures);
        int64_t ioWriteFailures = table.spoolWriteFailures +
                                  portfolio_->stats().writeFailures;
        if (sharedCache_ != nullptr)
            ioWriteFailures += sharedCache_->stats().writeFailures;
        kv.setInt("health.ioWriteFailures", ioWriteFailures);
        kv.setInt("health.ok", 1);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/create") {
        SessionSpec spec =
            SessionSpec::fromCreateRequest(KvFile::fromString(request.body));
        const std::string id = table_.create(spec);
        KvFile kv = spec.toKv();
        kv.set("session", id);
        return HttpResponse::ok(kv.toString());
    }

    // Session commands below (create/step/champion/resume/stop) reach
    // here on a worker thread — the I/O loop routes everything that
    // can wait on a session entry or on residency capacity through the
    // work queue (routesToWorker), so blocking here is fine.

    if (path == "/step") {
        const std::string &id = requiredParam(request, "session");
        int steps =
            static_cast<int>(request.intParam("steps", 1));
        if (steps < 1)
            PB_FATAL("'steps' must be >= 1");
        int advanced = table_.step(id, steps);
        KvFile kv = introspectionToKv(table_.status(id));
        kv.set("session", id);
        kv.setInt("step.requested", steps);
        kv.setInt("step.advanced", advanced);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/status") {
        const std::string &id = requiredParam(request, "session");
        KvFile kv = introspectionToKv(table_.status(id));
        kv.set("session", id);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/champion") {
        const std::string &id = requiredParam(request, "session");
        KvFile kv = table_.champion(id);
        kv.set("session", id);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/stop") {
        const std::string &id = requiredParam(request, "session");
        table_.stop(id);
        return HttpResponse::ok("stopped = 1\nsession = " + id + "\n");
    }

    if (path == "/resume") {
        const std::string &id = requiredParam(request, "session");
        table_.resume(id);
        KvFile kv = introspectionToKv(table_.status(id));
        kv.set("session", id);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/list") {
        KvFile kv;
        std::vector<std::string> ids = table_.list();
        kv.setInt("sessions", static_cast<int64_t>(ids.size()));
        for (size_t i = 0; i < ids.size(); ++i)
            kv.set("session." + std::to_string(i), ids[i]);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/machines") {
        // Inventory of registered machine profiles with their content
        // fingerprints — the keys portfolio champions are stored
        // under. Pure data, answered inline.
        KvFile kv;
        std::vector<sim::MachineProfile> machines =
            sim::MachineProfile::all();
        kv.setInt("machines", static_cast<int64_t>(machines.size()));
        for (size_t i = 0; i < machines.size(); ++i) {
            const std::string prefix =
                "machine." + std::to_string(i) + ".";
            kv.set(prefix + "name", machines[i].name);
            kv.set(prefix + "fingerprint",
                   hex16(machines[i].fingerprint()));
            kv.setInt(prefix + "hasOpenCL",
                      machines[i].hasOpenCL ? 1 : 0);
        }
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/portfolio") {
        // Stored-champion listing (metadata only, no config values);
        // snapshotting the map is cheap enough for the I/O thread.
        KvFile kv;
        std::vector<portfolio::ChampionRecord> records =
            portfolio_->all();
        portfolio::PortfolioStats stats = portfolio_->stats();
        kv.setInt("portfolio.entries",
                  static_cast<int64_t>(records.size()));
        kv.setInt("portfolio.loaded", stats.loaded);
        kv.setInt("portfolio.quarantined", stats.quarantined);
        kv.setInt("portfolio.stored", stats.stored);
        for (size_t i = 0; i < records.size(); ++i)
            championToKv(kv, "champion." + std::to_string(i) + ".",
                         records[i]);
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/portfolio/champion") {
        // Input-adaptive dispatch (worker thread: pricing runs the
        // model). Unknown benchmark/machine names 400 with the known
        // lists; an empty portfolio for the benchmark 404s below.
        apps::BenchmarkPtr benchmark =
            apps::findBenchmark(requiredParam(request, "benchmark"));
        sim::MachineProfile machine =
            sim::MachineProfile::byName(requiredParam(request, "machine"));
        int64_t n = request.intParam("n", 0);
        if (n < 1)
            PB_FATAL("'n' must be a positive input size");
        portfolio::DispatchOptions options;
        options.topK =
            static_cast<int>(request.intParam("topk", options.topK));
        options.crossMachine = request.intParam("cross", 0) != 0;
        portfolio::Dispatcher dispatcher(*portfolio_);
        portfolio::DispatchDecision decision =
            dispatcher.dispatch(*benchmark, n, machine, options);

        KvFile kv;
        championToKv(kv, "champion.", decision.champion);
        kv.set("dispatch.policy", decision.policy);
        kv.setInt("dispatch.requestedSize", n);
        kv.setDouble("dispatch.pricedSeconds", decision.pricedSeconds);
        kv.set("dispatch.pricedSecondsBits",
               hex16(std::bit_cast<uint64_t>(decision.pricedSeconds)));
        KvFile config = decision.champion.config.toKv();
        for (const std::string &key : config.keys())
            kv.set("config." + key, config.get(key));
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/portfolio/tune") {
        // Fill the portfolio for one (benchmark, machine): a ladder of
        // tuning sessions sharing the daemon's L2 cache. Long-running
        // by design — routed to a worker like /step.
        KvFile body = KvFile::fromString(request.body);
        apps::BenchmarkPtr benchmark =
            apps::findBenchmark(requiredBodyField(body, "benchmark"));
        sim::MachineProfile machine =
            sim::MachineProfile::byName(requiredBodyField(body, "machine"));

        tuner::PortfolioTunerOptions options;
        if (body.has("sizes"))
            options.sizes = body.getIntList("sizes");
        options.minSize = body.getIntOr("minSize", options.minSize);
        options.maxSize = body.getIntOr("maxSize", options.maxSize);
        options.growthFactor = static_cast<int>(
            body.getIntOr("growth", options.growthFactor));
        options.tuner.populationSize = static_cast<int>(body.getIntOr(
            "population", options.tuner.populationSize));
        options.tuner.generationsPerSize = static_cast<int>(body.getIntOr(
            "generations", options.tuner.generationsPerSize));
        options.tuner.seed = static_cast<uint64_t>(
            body.getIntOr("seed", static_cast<int64_t>(options.tuner.seed)));

        tuner::PortfolioTuner tuner(*portfolio_, sharedCache_.get());
        std::vector<tuner::PortfolioRung> rungs =
            tuner.tune(*benchmark, machine, options);

        KvFile kv;
        kv.set("tune.benchmark", benchmark->name());
        kv.set("tune.machine", machine.name);
        kv.set("tune.machineFingerprint", hex16(machine.fingerprint()));
        kv.setInt("tune.rungs", static_cast<int64_t>(rungs.size()));
        for (size_t i = 0; i < rungs.size(); ++i) {
            const std::string prefix = "rung." + std::to_string(i) + ".";
            kv.setInt(prefix + "inputSize", rungs[i].inputSize);
            kv.setDouble(prefix + "seconds", rungs[i].champion.seconds);
            kv.set(prefix + "secondsBits",
                   hex16(std::bit_cast<uint64_t>(
                       rungs[i].champion.seconds)));
            kv.set(prefix + "configFingerprint",
                   hex16(rungs[i].champion.configFingerprint));
            kv.setInt(prefix + "sharedHits", rungs[i].sharedHits);
            kv.setInt(prefix + "sharedPublishes",
                      rungs[i].sharedPublishes);
        }
        return HttpResponse::ok(kv.toString());
    }

    if (path == "/stats")
        return HttpResponse::ok(statsKv().toString());

    if (path == "/shutdown") {
        shutdownRequested_.store(true);
        wakeup_.notify();
        return HttpResponse::ok("shutdown = 1\n");
    }

    return HttpResponse::error(404, "no such command: " + path);
}

KvFile
TuningServer::statsKv() const
{
    KvFile kv;
    kv.setInt("server.uptimeSeconds",
              std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::steady_clock::now() - startTime_)
                  .count());
    kv.setInt("server.restartCount", options_.restartCount);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        kv.setInt("server.connectionsAccepted", connectionsAccepted_);
        kv.setInt("server.requests", requestsServed_);
        for (const auto &[name, stats] : commandStats_) {
            const std::string prefix = "command." + name + ".";
            kv.setInt(prefix + "count", stats.count);
            kv.setInt(prefix + "errors", stats.errors);
            kv.setDouble(prefix + "meanMicros",
                         stats.count ? stats.totalMicros / stats.count
                                     : 0.0);
            kv.setDouble(prefix + "maxMicros", stats.maxMicros);
        }
    }
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        kv.setInt("server.queueDepth",
                  static_cast<int64_t>(workQueue_.size()));
        kv.setInt("server.busyWorkers", busyWorkers_);
    }
    kv.setInt("server.maxQueueDepth",
              static_cast<int64_t>(options_.maxQueueDepth));
    kv.setInt("server.draining", draining_.load() ? 1 : 0);
    kv.setInt("server.backpressureRejections",
              backpressureRejections_.load());
    kv.setInt("server.deadlineRejections", deadlineRejections_.load());
    SessionTableStats table = table_.stats();
    kv.setInt("table.spoolQuarantined", table.spoolQuarantined);
    kv.setInt("table.spoolWriteFailures", table.spoolWriteFailures);
    kv.setInt("table.evaluationFailures", table.evaluationFailures);
    kv.setInt("table.created", table.created);
    kv.setInt("table.resumed", table.resumed);
    kv.setInt("table.evictions", table.evictions);
    kv.setInt("table.rehydrations", table.rehydrations);
    kv.setInt("table.expired", table.expired);
    kv.setInt("table.stopped", table.stopped);
    kv.setInt("table.resident", static_cast<int64_t>(table.resident));
    kv.setInt("table.total", static_cast<int64_t>(table.total));
    kv.setInt("table.peakResident",
              static_cast<int64_t>(table.peakResident));
    kv.setInt("table.residentCap",
              static_cast<int64_t>(options_.table.residentCap));
    kv.setInt("server.workers", options_.workers);
    int64_t ioWriteFailures = table.spoolWriteFailures;
    {
        portfolio::PortfolioStats stats = portfolio_->stats();
        kv.setInt("portfolio.entries",
                  static_cast<int64_t>(portfolio_->size()));
        kv.setInt("portfolio.loaded", stats.loaded);
        kv.setInt("portfolio.quarantined", stats.quarantined);
        kv.setInt("portfolio.stored", stats.stored);
        kv.setInt("portfolio.writeFailures", stats.writeFailures);
        kv.setInt("portfolio.persistent",
                  portfolio_->dir().empty() ? 0 : 1);
        ioWriteFailures += stats.writeFailures;
    }
    kv.setInt("cache.enabled", sharedCache_ != nullptr ? 1 : 0);
    if (sharedCache_ != nullptr) {
        cache::SharedCacheStats shared = sharedCache_->stats();
        ioWriteFailures += shared.writeFailures;
        kv.setInt("cache.writeFailures", shared.writeFailures);
        kv.setInt("cache.hits", shared.hits);
        kv.setInt("cache.misses", shared.misses);
        kv.setInt("cache.insertions", shared.insertions);
        kv.setInt("cache.crossSessionHits", shared.crossSessionHits);
        kv.setInt("cache.rejectedNonFinite", shared.rejectedNonFinite);
        kv.setInt("cache.evictions", shared.evictions);
        kv.setInt("cache.flushes", shared.flushes);
        kv.setInt("cache.loadedEntries", shared.loadedEntries);
        kv.setInt("cache.segmentsLoaded", shared.segmentsLoaded);
        kv.setInt("cache.segmentsQuarantined",
                  shared.segmentsQuarantined);
        kv.setInt("cache.entries", static_cast<int64_t>(shared.entries));
        kv.setInt("cache.bytes", static_cast<int64_t>(shared.bytes));
        kv.setInt("cache.maxBytes",
                  static_cast<int64_t>(options_.cache.maxBytes));
        kv.setInt("cache.persistent",
                  sharedCache_->persistent() ? 1 : 0);
    }
    // The one number an operator watches: every persistence-layer
    // write failure (spool + portfolio + cache), all survived.
    kv.setInt("io.writeFailures", ioWriteFailures);
    return kv;
}

void
TuningServer::ioLoop()
{
    Clock::time_point nextSweep =
        Clock::now() + std::chrono::seconds(options_.sweepIntervalSeconds);

    while (!stopping_.load()) {
        // ---- Build the poll set ---------------------------------------
        std::vector<pollfd> fds;
        std::vector<uint64_t> fdConn; // index-aligned; 0 = not a conn
        fds.push_back({listener_->fd(), POLLIN, 0});
        fdConn.push_back(0);
        fds.push_back({wakeup_.readFd(), POLLIN, 0});
        fdConn.push_back(0);
        for (auto &[id, connection] : connections_) {
            short events = POLLIN;
            if (!connection.outbox.empty())
                events |= POLLOUT;
            fds.push_back({connection.stream.fd(), events, 0});
            fdConn.push_back(id);
        }

        ::poll(fds.data(), fds.size(), 200);
        if (stopping_.load())
            break;

        // ---- Worker completions (the sel_thread bridge) ---------------
        wakeup_.drain();
        {
            std::deque<WorkDone> finished;
            {
                std::lock_guard<std::mutex> lock(doneMutex_);
                finished.swap(doneQueue_);
            }
            for (WorkDone &done : finished) {
                auto it = connections_.find(done.connId);
                if (it == connections_.end())
                    continue; // client vanished mid-step: drop it
                it->second.outbox += done.wire;
                it->second.awaitingWorker = false;
                // Pipelined requests buffered while the step ran.
                pumpRequests(done.connId, it->second);
            }
        }

        // ---- Socket events --------------------------------------------
        std::vector<uint64_t> dead;
        for (size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (fds[i].fd == listener_->fd()) {
                for (;;) {
                    net::TcpStream stream = listener_->accept();
                    if (!stream.valid())
                        break;
                    uint64_t id = ++nextConnId_;
                    Connection &connection = connections_[id];
                    connection.stream = std::move(stream);
                    connection.parser =
                        HttpParser(options_.maxRequestBytes);
                    std::lock_guard<std::mutex> lock(statsMutex_);
                    ++connectionsAccepted_;
                }
                continue;
            }
            if (fds[i].fd == wakeup_.readFd())
                continue; // drained above
            uint64_t connId = fdConn[i];
            auto it = connections_.find(connId);
            if (it == connections_.end())
                continue;
            Connection &connection = it->second;

            if (fds[i].revents & (POLLERR | POLLNVAL)) {
                dead.push_back(connId);
                continue;
            }
            try {
                if (fds[i].revents & (POLLIN | POLLHUP)) {
                    char buffer[16384];
                    for (;;) {
                        ptrdiff_t n = connection.stream.read(
                            buffer, sizeof(buffer));
                        if (n > 0) {
                            connection.parser.feed(
                                buffer, static_cast<size_t>(n));
                            continue;
                        }
                        if (n == 0)
                            connection.peerClosed = true;
                        break;
                    }
                    pumpRequests(connId, connection);
                }
                if (!connection.outbox.empty()) {
                    ptrdiff_t n = connection.stream.write(
                        connection.outbox.data(),
                        connection.outbox.size());
                    if (n > 0)
                        connection.outbox.erase(
                            0, static_cast<size_t>(n));
                }
            } catch (const FatalError &) {
                // Hard socket error on one connection: drop it, never
                // the daemon.
                dead.push_back(connId);
                continue;
            }
            if (connection.peerClosed && !connection.awaitingWorker &&
                connection.outbox.empty())
                dead.push_back(connId);
            if (connection.closeAfterWrite && connection.outbox.empty())
                dead.push_back(connId);
        }
        for (uint64_t id : dead)
            connections_.erase(id);

        // ---- Idle-session GC ------------------------------------------
        Clock::time_point now = Clock::now();
        if (now >= nextSweep) {
            table_.sweep(now);
            // Piggyback the cache journal flush on the sweep cadence:
            // a SIGKILLed daemon loses at most one sweep interval of
            // publishes (flush is one atomic segment rename, cheap
            // enough for the I/O thread).
            if (sharedCache_ != nullptr)
                sharedCache_->flush();
            nextSweep =
                now + std::chrono::seconds(options_.sweepIntervalSeconds);
        }
    }
}

} // namespace service
} // namespace petabricks
