/**
 * @file
 * One tuning search hosted inside the service daemon.
 *
 * A SessionSpec is the *fully resolved* recipe for a search — canonical
 * benchmark name, machine profile, concrete TunerOptions — in KvFile
 * form. Resolving happens exactly once, when a `create` request's
 * partial options meet the benchmark's defaults; after that the spec
 * is immutable and travels with the session to the spool directory.
 * That is what makes checkpoint-backed eviction transparent: a
 * rehydrated session is rebuilt from the identical spec and restores
 * the identical search state, so an evicted-and-resumed search reaches
 * a champion bit-identical to one that never left memory.
 *
 * HostedSession bundles the spec with the live objects it implies
 * (benchmark instance, ModelEngine, EngineEvaluator, TuningSession)
 * and keeps a lock-protected introspection snapshot that the `status`
 * endpoint reads while a worker thread is stepping — status never
 * waits for a generation to finish.
 */

#ifndef PETABRICKS_SERVICE_HOSTED_SESSION_H
#define PETABRICKS_SERVICE_HOSTED_SESSION_H

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "benchmarks/registry.h"
#include "engine/execution_engine.h"
#include "support/kvfile.h"
#include "tuner/session.h"

namespace petabricks {
namespace service {

/** See file comment. */
struct SessionSpec
{
    std::string benchmark; ///< canonical display name ("Sort", ...)
    std::string machine = "Desktop";

    /** ModelEngine batch parallelism *within* this session. Defaults
     * to 1: a daemon hosting many sessions gets its parallelism from
     * stepping sessions concurrently, not from nested pools. */
    int engineParallelism = 1;

    /**
     * Deterministic fault injection (soak/chaos testing): probability
     * that an evaluation key raises a TransientError on its first
     * attempt (engine::FaultPlan::transientRate). 0 disables. Injected
     * faults always recover within the engine's retry budget, so a
     * faulted search reaches the same champion as a clean one.
     */
    double faultRate = 0.0;
    int64_t faultSeed = 20130316; ///< FaultPlan seed when faultRate > 0

    /** Concrete search knobs (no unresolved defaults). */
    tuner::TunerOptions tuner;

    /**
     * Resolve a `create` request body into a concrete spec. Required
     * key: `benchmark`. Optional keys: `machine`, `seed`,
     * `populationSize`, `generationsPerSize`, `minInputSize`,
     * `maxInputSize`, `sizeGrowthFactor`, `trialsPerEvaluation`,
     * `cacheEvaluations`, `engineParallelism`. Unset search knobs take
     * the benchmark's tuning defaults and the machine's compile-model
     * parameters. Fatal error on unknown benchmark/machine names or
     * out-of-range values.
     */
    static SessionSpec fromCreateRequest(const KvFile &kv);

    /** Spool round-trip (exact: resolves to the same search). */
    KvFile toKv() const;
    static SessionSpec fromKv(const KvFile &kv);
};

/** See file comment. */
class HostedSession
{
  public:
    /**
     * Build the live search a spec describes (at generation 0). When
     * @p sharedCache is set, the session's private L1 cache is layered
     * over it: L1 miss -> L2 probe -> evaluate -> publish to both,
     * scoped by the engine's cacheScope() so only sessions pricing the
     * same benchmark on the same machine share results. The cache must
     * outlive the session (the SessionTable's owner guarantees that).
     */
    explicit HostedSession(SessionSpec spec,
                           cache::SharedEvaluationCache *sharedCache =
                               nullptr);

    const SessionSpec &spec() const { return spec_; }

    bool done() const { return session_.done(); }

    /**
     * Advance up to @p steps generations (stops early when the search
     * completes), refreshing the status snapshot after every
     * generation and invoking @p afterStep (checkpoint hook) if set.
     * @return generations actually run. Must not be called
     * concurrently with itself, save(), load(), or champion() — the
     * SessionTable's per-session busy flag enforces that.
     */
    int stepMany(int steps,
                 const std::function<void()> &afterStep = nullptr);

    /**
     * Status snapshot. Safe to call from any thread at any time,
     * including while another thread is inside stepMany().
     */
    tuner::SessionIntrospection introspect() const;

    /**
     * Champion in choice-configuration-file form: the config's own
     * keys plus `champion.seconds`, `champion.description`, and
     * `champion.done`.
     */
    KvFile championKv() const;

    /** Champion snapshot as a TuningResult (see TuningSession). */
    tuner::TuningResult result() const { return session_.result(); }

    /** Checkpoint atomically (write-to-temp + rename, so a daemon
     * killed mid-save never leaves a torn file behind). */
    void save(const std::string &path) const;

    /** Restore a checkpoint written by save() for the same spec. */
    void load(const std::string &path);

  private:
    void refreshSnapshot();

    SessionSpec spec_;
    apps::BenchmarkPtr benchmark_;
    /** ModelEngine, wrapped in a FaultInjectingEngine when the spec
     * asks for fault injection. */
    std::unique_ptr<engine::ExecutionEngine> engine_;
    engine::EngineEvaluator evaluator_;
    tuner::TuningSession session_;

    mutable std::mutex snapshotMutex_;
    tuner::SessionIntrospection snapshot_;
};

/**
 * Run the search @p spec describes start-to-finish in-process — the
 * reference the service tests and the remote-tuning CLI compare a
 * hosted search's champion against.
 */
tuner::TuningResult runSpecLocally(const SessionSpec &spec);

} // namespace service
} // namespace petabricks

#endif // PETABRICKS_SERVICE_HOSTED_SESSION_H
