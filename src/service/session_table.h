/**
 * @file
 * The daemon's session table: many concurrent searches in bounded
 * memory.
 *
 * Modeled on pazpar2's session table (one entry per client search,
 * looked up by id on every command), with one addition the tuning
 * workload forces: searches are *heavy* (population, caches, engine
 * state), so the table holds at most `residentCap` of them live.
 * Colder sessions exist only as a spec + checkpoint pair in the spool
 * directory and are transparently rebuilt on their next touch — the
 * TuningSession save()/load() guarantee (identical champion after a
 * round-trip) is what makes this eviction invisible to clients.
 *
 * Concurrency contract:
 *  - One table mutex guards the map and every residency transition
 *    (create / rehydrate / evict / destroy, including their disk I/O —
 *    checkpoints are small, so transitions are short).
 *  - Stepping runs *outside* the mutex on the caller's (worker)
 *    thread, with the entry marked busy; per-session busy flags plus
 *    condition variables serialize step/champion/stop on the same
 *    session while leaving every other session fully concurrent.
 *    Idle-and-resident is acquired as one atomic predicate
 *    (acquireIdleResident): any wait that drops the mutex re-checks
 *    both halves, so two steppers can never own the same session.
 *  - status() never blocks on a stepping session: it reads the
 *    session's lock-protected snapshot (live) or the entry's last
 *    recorded snapshot (evicted), and deliberately does not count as a
 *    touch, so a client polling status cannot keep an abandoned
 *    session resident.
 *  - Because transitions hold the table mutex, the resident count can
 *    never overshoot the cap, which the soak test asserts.
 */

#ifndef PETABRICKS_SERVICE_SESSION_TABLE_H
#define PETABRICKS_SERVICE_SESSION_TABLE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/hosted_session.h"

namespace petabricks {
namespace service {

/** Construction knobs for SessionTable. */
struct SessionTableOptions
{
    /** Directory for spec (.meta) and checkpoint (.ckpt) files.
     * Created if missing. */
    std::string spoolDir;

    /** Maximum sessions held live in memory at once. */
    size_t residentCap = 64;

    /**
     * Checkpoint after every generation while stepping. Keeps the
     * spool current enough that a SIGKILLed daemon loses at most one
     * generation of progress (and none of its determinism: resuming an
     * on-trajectory checkpoint replays to the identical champion).
     */
    bool checkpointEachStep = true;

    /** Sweeper: evict resident sessions idle longer than this
     * (seconds; 0 disables idle eviction). */
    int64_t idleEvictSeconds = 300;

    /** Sweeper: hard-delete sessions untouched longer than this
     * (seconds; 0 disables expiry — abandoned sessions stay on disk). */
    int64_t expireSeconds = 0;

    /**
     * Verify every spooled session at construction: each .meta must
     * parse into a spec and its .ckpt (if any) must restore into a
     * live session. Corrupt pairs are quarantined (renamed with a
     * `.quarantine` suffix) and counted, so one torn file can never
     * take the daemon down or poison a later resume; healthy sessions
     * keep serving. Orphan .ckpt files (no .meta) are quarantined too.
     */
    bool fsckSpool = true;

    /**
     * Process-wide shared evaluation cache (L2) handed to every
     * hosted session built by this table, or nullptr for private-only
     * caching. Not owned; must outlive the table (the server declares
     * the cache before the table for exactly that reason).
     */
    cache::SharedEvaluationCache *sharedCache = nullptr;
};

/** Monotonic counters, exposed through the `stats` endpoint. */
struct SessionTableStats
{
    int64_t created = 0;
    int64_t resumed = 0;       ///< resume() calls that found a session
    int64_t evictions = 0;     ///< live -> spool transitions
    int64_t rehydrations = 0;  ///< spool -> live transitions
    int64_t expired = 0;       ///< sessions hard-deleted by the sweeper
    int64_t stopped = 0;       ///< explicit stop() deletions
    size_t resident = 0;       ///< live sessions right now
    size_t total = 0;          ///< table entries right now (live + spooled)
    size_t peakResident = 0;   ///< high-water mark of `resident`

    /** Spooled sessions set aside by the startup fsck (corrupt .meta
     * or .ckpt, renamed `*.quarantine`). */
    int64_t spoolQuarantined = 0;

    /** Spool writes (meta or checkpoint) that failed with an IoError
     * (ENOSPC/EIO, injected or real). The session keeps serving from
     * memory; its spool falls back to the last good checkpoint, which
     * resumes to the identical champion. */
    int64_t spoolWriteFailures = 0;

    /** Sum of evaluation failures (retries exhausted) across every
     * session in the table, live or spooled. */
    int64_t evaluationFailures = 0;
};

/** See file comment. */
class SessionTable
{
  public:
    explicit SessionTable(SessionTableOptions options);

    /** Register a new session and make it resident. @return its id. */
    std::string create(const SessionSpec &spec);

    /**
     * Re-register a session known from the spool directory (typically
     * after a daemon restart) and make it resident at its last
     * checkpoint. No-op (a touch) when the id is already in the table.
     * Fatal error when the spool has no such session.
     */
    std::string resume(const std::string &id);

    /**
     * Advance @p id by up to @p steps generations on the calling
     * thread (the server calls this from its worker pool). Blocks
     * while another thread is stepping the same session.
     * @return generations actually run (0 when already done).
     */
    int step(const std::string &id, int steps);

    /** Status snapshot; never blocks on stepping, never a touch. */
    tuner::SessionIntrospection status(const std::string &id) const;

    /** The session's spec (create-time recipe). */
    SessionSpec spec(const std::string &id) const;

    /** Champion in KvFile form (HostedSession::championKv). */
    KvFile champion(const std::string &id);

    /** Delete @p id: its live state and its spool files. */
    void stop(const std::string &id);

    /** Ids currently in the table, sorted. */
    std::vector<std::string> list() const;

    /**
     * One sweeper pass at time @p now: evict resident sessions idle
     * past idleEvictSeconds, hard-delete sessions untouched past
     * expireSeconds. Split from the timer thread so tests drive GC
     * deterministically with a synthetic clock.
     */
    void sweep(std::chrono::steady_clock::time_point now);

    /**
     * Checkpoint every resident idle session to the spool (the
     * graceful-drain final flush). Busy sessions are skipped with a
     * warning — the drain protocol only calls this once the worker
     * pool is quiesced, so a busy entry here means a bug upstream.
     */
    void checkpointAll();

    SessionTableStats stats() const;

    const SessionTableOptions &options() const { return options_; }

    /** Checkpoint path for @p id (exposed for the smoke tooling). */
    std::string checkpointPath(const std::string &id) const;
    std::string metaPath(const std::string &id) const;

  private:
    struct Entry
    {
        std::string id;
        SessionSpec spec;
        std::unique_ptr<HostedSession> session; ///< null when evicted
        tuner::SessionIntrospection lastStatus;
        bool busy = false;   ///< a worker owns the session right now
        bool dead = false;   ///< stop()ed while someone was waiting
        std::chrono::steady_clock::time_point lastTouch;
        std::condition_variable busyCv; ///< waits on the table mutex
    };
    using EntryPtr = std::shared_ptr<Entry>;

    EntryPtr find(const std::string &id) const;

    /** Wait until nobody is stepping @p entry (table mutex held). */
    void waitNotBusy(Entry &entry, std::unique_lock<std::mutex> &lock);

    /**
     * Wait until @p entry is idle AND resident, evicting LRU sessions
     * as needed (table mutex held). Both conditions are guaranteed
     * under the single lock hold this returns with: every internal
     * wait (busyCv or roomCv) drops the mutex, so the full predicate
     * is re-checked after each wake — a caller may mark the entry busy
     * immediately after this returns without racing another waiter.
     */
    void acquireIdleResident(Entry &entry,
                             std::unique_lock<std::mutex> &lock);

    /** Evict a resident, non-busy entry (table mutex held). */
    void evict(Entry &entry);

    /** Delete @p entry's spool files (best-effort). */
    void removeSpoolFiles(const std::string &id);

    /** Startup spool verification (see SessionTableOptions::fsckSpool);
     * runs before the id scan, so quarantined files are invisible. */
    void fsckSpoolDir();

    SessionTableOptions options_;
    mutable std::mutex mutex_;
    std::condition_variable roomCv_; ///< capacity may have freed up
    std::map<std::string, EntryPtr> entries_;
    uint64_t nextId_ = 0;
    size_t resident_ = 0;
    SessionTableStats stats_;
    // Atomic (not folded into stats_): step() checkpoints with the
    // table mutex released, so the counter cannot live under it.
    std::atomic<int64_t> spoolWriteFailures_{0};
};

} // namespace service
} // namespace petabricks

#endif // PETABRICKS_SERVICE_SESSION_TABLE_H
