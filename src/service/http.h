/**
 * @file
 * Minimal HTTP/1.1 framing for the tuning service's command API.
 *
 * The daemon speaks just enough HTTP to be driven by service::Client,
 * curl, or a browser: request line + headers + Content-Length body,
 * keep-alive connections, percent-encoded query strings. Command
 * arguments travel in the query string; structured payloads (create
 * options, champion configs) travel as KvFile text bodies — the same
 * `key = value` format as the paper's choice configuration files, so
 * every wire payload diffs cleanly and reuses the existing parser.
 *
 * The parser is incremental (feed() bytes as they arrive on a
 * non-blocking socket, poll parsed requests out), which is what the
 * single-threaded front-end loop needs: it never blocks waiting for
 * the rest of a request.
 */

#ifndef PETABRICKS_SERVICE_HTTP_H
#define PETABRICKS_SERVICE_HTTP_H

#include <cstddef>
#include <map>
#include <optional>
#include <string>

namespace petabricks {
namespace service {

/** One parsed request. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ... (uppercased)
    std::string target; ///< raw request target ("/step?session=s1")
    std::string path;   ///< decoded path component ("/step")
    std::map<std::string, std::string> query; ///< decoded query params
    std::map<std::string, std::string> headers; ///< lowercased names
    std::string body;

    /** Query parameter @p key, or @p fallback when absent. Returned by
     * value: a reference into `query` would invite dangling when the
     * fallback (a temporary) is chosen. */
    std::string param(const std::string &key,
                      const std::string &fallback = std::string()) const;

    /** Integer query parameter; fatal error on non-integer values. */
    int64_t intParam(const std::string &key, int64_t fallback) const;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    bool keepAlive = true;

    /** When > 0, emitted as a `Retry-After` header — the backpressure
     * hint accompanying a 503 so clients know when to come back. */
    int retryAfterSeconds = 0;

    /** Render the full wire form (status line, headers, body). */
    std::string serialize() const;

    static HttpResponse ok(std::string body);
    static HttpResponse error(int status, std::string message);
};

/** Decode %XX escapes and '+' in a URL component. */
std::string urlDecode(const std::string &text);

/** Parse "a=1&b=x%20y" into a decoded key/value map. */
std::map<std::string, std::string> parseQuery(const std::string &query);

/**
 * Incremental request parser for one connection. feed() appends raw
 * bytes; next() pops the earliest complete request, leaving any
 * pipelined remainder buffered. Malformed or oversized input sets
 * failed() — the connection should answer 400 and close.
 */
class HttpParser
{
  public:
    /** @param maxBytes cap on headers+body of a single request. */
    explicit HttpParser(size_t maxBytes = 1 << 20) : maxBytes_(maxBytes) {}

    /** Append newly received bytes. */
    void feed(const char *data, size_t size);

    /** Pop the next complete request, if one is buffered. */
    std::optional<HttpRequest> next();

    /** True once the stream is unparseable (protocol error / too big). */
    bool failed() const { return failed_; }

    /** Human-readable reason when failed(). */
    const std::string &failReason() const { return failReason_; }

  private:
    void fail(const std::string &reason);

    std::string buffer_;
    size_t maxBytes_;
    bool failed_ = false;
    std::string failReason_;
};

} // namespace service
} // namespace petabricks

#endif // PETABRICKS_SERVICE_HTTP_H
