#include "service/session_table.h"

#include <cstdio>
#include <filesystem>

#include "support/crashpoint.h"
#include "support/error.h"
#include "support/fsck.h"
#include "support/logging.h"

namespace petabricks {
namespace service {

namespace fs = std::filesystem;

SessionTable::SessionTable(SessionTableOptions options)
    : options_(std::move(options))
{
    PB_ASSERT(!options_.spoolDir.empty(), "spool directory is required");
    PB_ASSERT(options_.residentCap >= 1, "resident cap must be >= 1");
    std::error_code ec;
    fs::create_directories(options_.spoolDir, ec);
    if (ec)
        PB_FATAL("cannot create spool directory '" << options_.spoolDir
                                                   << "': "
                                                   << ec.message());

    if (options_.fsckSpool)
        fsckSpoolDir();

    // A restarted daemon must never hand out an id that collides with
    // a spooled session from its previous life.
    for (const fs::directory_entry &entry :
         fs::directory_iterator(options_.spoolDir, ec)) {
        if (entry.path().extension() != ".meta")
            continue;
        std::string stem = entry.path().stem().string();
        if (stem.size() > 1 && stem[0] == 's') {
            char *end = nullptr;
            uint64_t n = std::strtoull(stem.c_str() + 1, &end, 10);
            if (end && *end == '\0' && n > nextId_)
                nextId_ = n;
        }
    }
}

void
SessionTable::fsckSpoolDir()
{
    // Quarantine = rename, not delete: a corrupt pair is preserved for
    // post-mortem while becoming invisible to every later spool scan
    // (resume, id allocation, this fsck on the next boot).
    auto quarantine = [&](const std::string &id, const char *why) {
        for (const std::string &path :
             {metaPath(id), checkpointPath(id)}) {
            std::error_code ec;
            if (fs::exists(path, ec))
                fsck::quarantine(path);
        }
        ++stats_.spoolQuarantined;
        PB_WARN("service: quarantined spooled session '" << id << "' ("
                                                         << why << ")");
    };

    std::error_code ec;
    std::vector<std::string> metaIds;
    std::vector<std::string> orphanCkptIds;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(options_.spoolDir, ec)) {
        if (entry.path().extension() == ".meta")
            metaIds.push_back(entry.path().stem().string());
        else if (entry.path().extension() == ".ckpt")
            orphanCkptIds.push_back(entry.path().stem().string());
    }

    for (const std::string &id : metaIds) {
        try {
            // The full rehydration path: spec parse, session build,
            // checkpoint restore. Anything a later resume would trip
            // over trips here instead, once, at boot.
            SessionSpec spec = SessionSpec::fromKv(KvFile::load(metaPath(id)));
            const std::string ckpt = checkpointPath(id);
            if (fs::exists(ckpt)) {
                HostedSession probe(spec);
                probe.load(ckpt);
            }
        } catch (const std::exception &e) {
            quarantine(id, e.what());
        }
    }
    // A ckpt whose meta was just quarantined was renamed with it —
    // re-check existence so it is not counted twice.
    for (const std::string &id : orphanCkptIds)
        if (!fs::exists(metaPath(id)) && fs::exists(checkpointPath(id)))
            quarantine(id, "checkpoint without a .meta spec");
}

std::string
SessionTable::checkpointPath(const std::string &id) const
{
    return options_.spoolDir + "/" + id + ".ckpt";
}

std::string
SessionTable::metaPath(const std::string &id) const
{
    return options_.spoolDir + "/" + id + ".meta";
}

SessionTable::EntryPtr
SessionTable::find(const std::string &id) const
{
    auto it = entries_.find(id);
    if (it == entries_.end())
        PB_FATAL("unknown session '" << id << "'");
    return it->second;
}

void
SessionTable::waitNotBusy(Entry &entry, std::unique_lock<std::mutex> &lock)
{
    entry.busyCv.wait(lock, [&] { return !entry.busy || entry.dead; });
    if (entry.dead)
        PB_FATAL("session '" << entry.id << "' was stopped");
}

void
SessionTable::evict(Entry &entry)
{
    PB_ASSERT(entry.session && !entry.busy,
              "evicting a session that is not resident and idle");
    entry.lastStatus = entry.session->introspect();
    try {
        entry.session->save(checkpointPath(entry.id));
    } catch (const IoError &e) {
        // Evict anyway: the spool keeps the last good checkpoint, and
        // resuming it replays to the identical champion (the same
        // guarantee a SIGKILL mid-step leans on).
        spoolWriteFailures_.fetch_add(1, std::memory_order_relaxed);
        PB_WARN("service: eviction checkpoint for session "
                << entry.id << " failed, spool keeps last good state ("
                << e.what() << ")");
    }
    entry.session.reset();
    --resident_;
    ++stats_.evictions;
    PB_DEBUG("service: evicted session " << entry.id);
}

void
SessionTable::acquireIdleResident(Entry &entry,
                                  std::unique_lock<std::mutex> &lock)
{
    for (;;) {
        // Both halves of the predicate — nobody stepping this entry AND
        // the entry resident — must be observed under one continuous
        // lock hold. Every wait below drops the mutex (letting another
        // caller slip in, mark the entry busy, and start stepping), so
        // after any wake the whole check starts over.
        waitNotBusy(entry, lock);
        if (entry.session)
            return;
        if (resident_ < options_.residentCap) {
            // Rebuild from the immutable spec, then restore the last
            // checkpoint if one exists (a never-stepped session has
            // none; generation 0 is exactly its saved state). The lock
            // is held throughout, so the idle check above still holds.
            auto session = std::make_unique<HostedSession>(
                entry.spec, options_.sharedCache);
            const std::string ckpt = checkpointPath(entry.id);
            if (fs::exists(ckpt))
                session->load(ckpt);
            entry.session = std::move(session);
            entry.lastStatus = entry.session->introspect();
            ++resident_;
            ++stats_.rehydrations;
            stats_.peakResident = std::max(stats_.peakResident, resident_);
            PB_DEBUG("service: rehydrated session " << entry.id);
            return;
        }
        // At capacity: evict the least-recently-touched idle resident
        // (no lock drop), or wait for a stepping worker to finish and
        // free one (lock drop — loop back and re-check busy too).
        Entry *victim = nullptr;
        for (auto &[id, candidate] : entries_)
            if (candidate->session && !candidate->busy &&
                candidate.get() != &entry &&
                (!victim || candidate->lastTouch < victim->lastTouch))
                victim = candidate.get();
        if (victim)
            evict(*victim);
        else
            roomCv_.wait(lock);
    }
}

std::string
SessionTable::create(const SessionSpec &spec)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const std::string id = "s" + std::to_string(++nextId_);
    auto entry = std::make_shared<Entry>();
    entry->id = id;
    entry->spec = spec;
    entry->lastTouch = std::chrono::steady_clock::now();
    entries_[id] = entry;
    // The spec is immutable: persist it now, so the session survives a
    // daemon crash from the moment create returns. A failed meta write
    // degrades to memory-only (the session works but will not survive
    // a restart; its orphan checkpoint is quarantined by the next
    // boot's fsck) — the daemon itself must keep serving.
    try {
        spec.toKv().saveAtomic(metaPath(id), "spool.meta");
    } catch (const IoError &e) {
        spoolWriteFailures_.fetch_add(1, std::memory_order_relaxed);
        PB_WARN("service: meta write for session "
                << id << " failed, session is memory-only (" << e.what()
                << ")");
    }
    // Residency accounting (including the rehydration counter: a
    // create is the first hydration) goes through the same path as a
    // spool reload.
    acquireIdleResident(*entry, lock);
    ++stats_.created;
    return id;
}

std::string
SessionTable::resume(const std::string &id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
        // Already known (not restarted, just evicted or live): a
        // resume is simply a touch that guarantees residency.
        EntryPtr entry = it->second;
        acquireIdleResident(*entry, lock);
        entry->lastTouch = std::chrono::steady_clock::now();
        ++stats_.resumed;
        return id;
    }
    const std::string meta = metaPath(id);
    if (!fs::exists(meta))
        PB_FATAL("no spooled session '" << id << "' to resume");
    auto entry = std::make_shared<Entry>();
    entry->id = id;
    entry->spec = SessionSpec::fromKv(KvFile::load(meta));
    entry->lastTouch = std::chrono::steady_clock::now();
    entries_[id] = entry;
    acquireIdleResident(*entry, lock);
    ++stats_.resumed;
    return id;
}

int
SessionTable::step(const std::string &id, int steps)
{
    std::unique_lock<std::mutex> lock(mutex_);
    EntryPtr entry = find(id);
    acquireIdleResident(*entry, lock);
    entry->busy = true;
    entry->lastTouch = std::chrono::steady_clock::now();
    HostedSession *session = entry->session.get();
    lock.unlock();

    // The long part runs without the table mutex: other sessions keep
    // stepping, status stays responsive, only *this* session is held
    // (busy flag). Checkpoint after every generation when configured —
    // an atomic rename per step, so SIGKILL at any instant leaves a
    // loadable on-trajectory checkpoint.
    int advanced = 0;
    std::exception_ptr error;
    // A failed checkpoint write must not fail the step: the in-memory
    // search is intact, and the spool still holds the last good
    // checkpoint — which, by the determinism guarantee, resumes to the
    // identical champion. Count it, warn, keep tuning.
    auto checkpoint = [&] {
        try {
            session->save(checkpointPath(id));
        } catch (const IoError &e) {
            spoolWriteFailures_.fetch_add(1, std::memory_order_relaxed);
            PB_WARN("service: checkpoint write for session "
                    << id << " failed, spool keeps last good state ("
                    << e.what() << ")");
        }
    };
    try {
        std::function<void()> afterStep;
        if (options_.checkpointEachStep)
            afterStep = checkpoint;
        advanced = session->stepMany(steps, afterStep);
        if (!options_.checkpointEachStep)
            checkpoint();
    } catch (...) {
        error = std::current_exception();
    }

    lock.lock();
    entry->busy = false;
    entry->lastTouch = std::chrono::steady_clock::now();
    entry->lastStatus = session->introspect();
    entry->busyCv.notify_all();
    roomCv_.notify_all();
    if (error)
        std::rethrow_exception(error);
    return advanced;
}

tuner::SessionIntrospection
SessionTable::status(const std::string &id) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    EntryPtr entry = find(id);
    // Live sessions answer from their snapshot (safe mid-step); cold
    // ones from the status recorded at eviction. Neither blocks, and
    // neither counts as a touch.
    if (entry->session)
        return entry->session->introspect();
    return entry->lastStatus;
}

SessionSpec
SessionTable::spec(const std::string &id) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return find(id)->spec;
}

KvFile
SessionTable::champion(const std::string &id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    EntryPtr entry = find(id);
    acquireIdleResident(*entry, lock);
    entry->lastTouch = std::chrono::steady_clock::now();
    return entry->session->championKv();
}

void
SessionTable::stop(const std::string &id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    EntryPtr entry = find(id);
    waitNotBusy(*entry, lock);
    if (entry->session) {
        entry->session.reset();
        --resident_;
    }
    entry->dead = true;
    entry->busyCv.notify_all();
    entries_.erase(id);
    ++stats_.stopped;
    removeSpoolFiles(id);
    roomCv_.notify_all();
}

std::vector<std::string>
SessionTable::list() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::vector<std::string> ids;
    ids.reserve(entries_.size());
    for (const auto &[id, entry] : entries_)
        ids.push_back(id);
    return ids;
}

void
SessionTable::sweep(std::chrono::steady_clock::time_point now)
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::vector<std::string> expired;
    for (auto &[id, entry] : entries_) {
        if (entry->busy)
            continue;
        const auto idle = std::chrono::duration_cast<std::chrono::seconds>(
                              now - entry->lastTouch)
                              .count();
        if (entry->session && options_.idleEvictSeconds > 0 &&
            idle >= options_.idleEvictSeconds)
            evict(*entry);
        if (!entry->session && options_.expireSeconds > 0 &&
            idle >= options_.expireSeconds)
            expired.push_back(id);
    }
    for (const std::string &id : expired) {
        EntryPtr entry = entries_[id];
        entry->dead = true;
        entry->busyCv.notify_all();
        entries_.erase(id);
        removeSpoolFiles(id);
        ++stats_.expired;
        PB_DEBUG("service: expired abandoned session " << id);
    }
    if (!expired.empty())
        roomCv_.notify_all();
}

void
SessionTable::checkpointAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto &[id, entry] : entries_) {
        if (!entry->session)
            continue; // evicted: the spool already has its state
        if (entry->busy) {
            PB_WARN("service: checkpointAll skipping busy session "
                    << id);
            continue;
        }
        entry->lastStatus = entry->session->introspect();
        try {
            entry->session->save(checkpointPath(id));
        } catch (const IoError &e) {
            spoolWriteFailures_.fetch_add(1, std::memory_order_relaxed);
            PB_WARN("service: checkpointAll write for session "
                    << id << " failed (" << e.what() << ")");
        }
    }
}

SessionTableStats
SessionTable::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    SessionTableStats stats = stats_;
    stats.spoolWriteFailures =
        spoolWriteFailures_.load(std::memory_order_relaxed);
    stats.resident = resident_;
    stats.total = entries_.size();
    for (const auto &[id, entry] : entries_) {
        // Live entries answer from their snapshot (safe mid-step);
        // evicted ones from the status recorded at eviction.
        const tuner::SessionIntrospection view =
            entry->session ? entry->session->introspect()
                           : entry->lastStatus;
        stats.evaluationFailures += view.evaluationFailures;
    }
    return stats;
}

void
SessionTable::removeSpoolFiles(const std::string &id)
{
    std::remove(checkpointPath(id).c_str());
    std::remove(metaPath(id).c_str());
}

} // namespace service
} // namespace petabricks
