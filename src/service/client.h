/**
 * @file
 * Blocking client for the tuning service's HTTP command API.
 *
 * One Client owns one keep-alive connection and issues one request at
 * a time — the remote analogue of holding a TuningSession object. The
 * remote_tuning example, the daemon smoke test, and the end-to-end
 * tests all drive the daemon through this class, so the wire protocol
 * has exactly one client-side implementation.
 *
 * Server-reported errors (4xx/5xx) surface as FatalError carrying the
 * server's message — except 503 (backpressure / draining), which is a
 * TransientError: the daemon explicitly said "try again", so callers
 * with a retry loop can distinguish it from a real failure. Transport
 * failures (daemon died mid-request) surface as FatalError from the
 * socket layer; connect/read timeouts surface as TransientError.
 */

#ifndef PETABRICKS_SERVICE_CLIENT_H
#define PETABRICKS_SERVICE_CLIENT_H

#include <cstdint>
#include <string>

#include "support/kvfile.h"
#include "support/socket.h"
#include "tuner/session.h"

namespace petabricks {
namespace service {

/**
 * Opt-in retry behavior for 503 backpressure responses. Only a
 * *completed* 503 is ever retried: the daemon finished the exchange and
 * explicitly said "come back later", so resending is safe. A timeout is
 * never retried automatically — the request may have been executed, and
 * re-POSTing a `/step` could silently double the work.
 */
struct ClientRetryPolicy
{
    /** Retries after the first 503 (0 = give up immediately, the
     * default — existing callers see no behavior change). */
    int attempts = 0;

    /** Base for the exponential fallback sleep used when the 503
     * carried no Retry-After header (millis, doubled per retry). */
    int fallbackBaseMillis = 100;

    /** Hard cap on any single sleep, hinted or not (millis). A daemon
     * that says "Retry-After: 3600" should not wedge a client. */
    int maxSleepMillis = 5000;

    /** Cap on the deterministic jitter added to every sleep so a herd
     * of clients told "Retry-After: 1" does not return in lockstep. */
    int jitterCapMillis = 100;

    /** Seed for the jitter sequence (deterministic per client). */
    uint64_t jitterSeed = 1;
};

/** See file comment. */
class Client
{
  public:
    /**
     * Connect to a running daemon; fatal error when unreachable.
     * @param timeoutMillis bound on the connect and on every read
     *        while awaiting a response (0 = block forever). Expiry
     *        throws TransientError — the daemon may just be slow, so
     *        the caller decides whether to retry.
     */
    Client(const std::string &host, uint16_t port, int timeoutMillis = 0);

    /** Round-trip liveness probe. */
    void ping();

    /**
     * Create a session from @p options (same keys as
     * SessionSpec::fromCreateRequest; `benchmark` is required).
     * @return the new session id.
     */
    std::string create(const KvFile &options);

    /**
     * Advance @p sessionId by @p steps generations. Blocks until the
     * steps complete when @p wait (the default); otherwise returns
     * immediately after the daemon accepts the work — poll status()
     * to watch it land.
     * @return generations actually run (0 for no-wait calls).
     */
    int step(const std::string &sessionId, int steps, bool wait = true);

    /** Raw status body (status.* / cache.* keys). */
    KvFile status(const std::string &sessionId);

    /** status() decoded into the introspection struct. */
    tuner::SessionIntrospection introspect(const std::string &sessionId);

    /** step() until the search completes (polling when detached work
     * is in flight), then return the champion body. */
    KvFile runToCompletion(const std::string &sessionId,
                           int stepsPerCall = 8);

    /** Champion body: config keys + champion.* metadata. */
    KvFile champion(const std::string &sessionId);

    /** Delete the session (live state and spool files). */
    void stopSession(const std::string &sessionId);

    /** Rehydrate a spooled session (e.g. after a daemon restart). */
    void resume(const std::string &sessionId);

    /** Server + table counters. */
    KvFile stats();

    /** Registered machine profiles with their content fingerprints. */
    KvFile machines();

    /** Every stored champion (metadata only) + portfolio counters. */
    KvFile portfolio();

    /**
     * Input-adaptive dispatch: the stored champion the daemon would
     * run for (@p benchmark, @p n) on @p machine. Body carries
     * champion.* metadata, config.* values, and dispatch.* policy.
     */
    KvFile portfolioChampion(const std::string &benchmark,
                             const std::string &machine, int64_t n);

    /**
     * Tune a champion ladder into the daemon's portfolio (body keys:
     * `benchmark`, `machine` required; `sizes`/`minSize`/`maxSize`/
     * `growth`/`population`/`generations`/`seed` optional). Blocks
     * until every rung finishes.
     */
    KvFile portfolioTune(const KvFile &options);

    /** Ask the daemon to exit its serve loop. */
    void shutdownServer();

    /**
     * One raw command round-trip: @p target is the request target
     * ("/step?session=s1"), @p body the request payload. Returns the
     * response body parsed as a KvFile; throws FatalError on non-2xx.
     */
    KvFile command(const std::string &method, const std::string &target,
                   const std::string &body = std::string());

    /** Enable retry-on-503 for the session commands (see
     * ClientRetryPolicy; default policy retries nothing). */
    void setRetryPolicy(const ClientRetryPolicy &policy)
    {
        retry_ = policy;
    }

    /**
     * The Retry-After hint (seconds) carried by the most recent 503,
     * or -1 when the last 503 had none / none was ever received.
     */
    int lastRetryAfterSeconds() const { return lastRetryAfterSeconds_; }

  private:
    /** command(), retried per retry_ when the daemon answers 503. */
    KvFile commandWithRetry(const std::string &method,
                            const std::string &target,
                            const std::string &body = std::string());

    std::string host_;
    int timeoutMillis_ = 0;
    net::TcpStream stream_;
    std::string inbox_; ///< bytes read past the previous response

    ClientRetryPolicy retry_;
    int lastRetryAfterSeconds_ = -1;
    bool lastTransientWas503_ = false; ///< vs. a timeout (never retried)
    uint64_t jitterState_ = 0;         ///< lazily seeded from retry_
};

} // namespace service
} // namespace petabricks

#endif // PETABRICKS_SERVICE_CLIENT_H
