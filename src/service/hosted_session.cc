#include "service/hosted_session.h"

#include <cstdio>
#include <limits>

#include "engine/fault_injection.h"
#include "support/crashpoint.h"
#include "support/error.h"

namespace petabricks {
namespace service {

namespace {

/** Engine for @p spec (the machine lookup validates the name). */
engine::ModelEngine
makeEngine(const SessionSpec &spec)
{
    return engine::ModelEngine(sim::MachineProfile::byName(spec.machine),
                               spec.engineParallelism);
}

/** The session's evaluation engine: the spec's ModelEngine, wrapped
 * in a deterministic fault injector when the spec asks for one. */
std::unique_ptr<engine::ExecutionEngine>
makeSessionEngine(const SessionSpec &spec)
{
    auto engine = std::make_unique<engine::ModelEngine>(makeEngine(spec));
    if (spec.faultRate <= 0.0)
        return engine;
    engine::FaultPlan plan;
    plan.seed = static_cast<uint64_t>(spec.faultSeed);
    plan.transientRate = spec.faultRate;
    // One failing attempt per faulting key keeps every injected fault
    // inside the default retry budget: the search must converge to the
    // clean champion.
    plan.faultsPerKey = 1;
    return std::make_unique<engine::FaultInjectingEngine>(
        std::move(engine), plan);
}

} // namespace

SessionSpec
SessionSpec::fromCreateRequest(const KvFile &kv)
{
    if (!kv.has("benchmark"))
        PB_FATAL("create request is missing the 'benchmark' key");

    SessionSpec spec;
    // findBenchmark canonicalizes the name (and rejects unknown ones).
    apps::BenchmarkPtr benchmark = apps::findBenchmark(kv.get("benchmark"));
    spec.benchmark = benchmark->name();
    if (kv.has("machine"))
        spec.machine = kv.get("machine");
    spec.engineParallelism =
        static_cast<int>(kv.getIntOr("engineParallelism", 1));
    if (spec.engineParallelism < 0)
        PB_FATAL("engineParallelism must be >= 0");
    if (kv.has("faultRate"))
        spec.faultRate = kv.getDouble("faultRate");
    spec.faultSeed = kv.getIntOr("faultSeed", spec.faultSeed);
    if (spec.faultRate < 0.0 || spec.faultRate >= 1.0)
        PB_FATAL("faultRate must be in [0, 1)");

    // Benchmark-derived defaults, then the machine's compile model,
    // then the request's explicit overrides — the same layering
    // tuneWithEngine() applies, so a default-created hosted session
    // runs the same search as the library path.
    tuner::TunerOptions &tuner = spec.tuner;
    tuner.minInputSize = benchmark->minTuningSize();
    tuner.maxInputSize = benchmark->testingInputSize();
    makeEngine(spec).configureTuner(tuner);

    tuner.populationSize = static_cast<int>(
        kv.getIntOr("populationSize", tuner.populationSize));
    tuner.generationsPerSize = static_cast<int>(
        kv.getIntOr("generationsPerSize", tuner.generationsPerSize));
    tuner.minInputSize = kv.getIntOr("minInputSize", tuner.minInputSize);
    tuner.maxInputSize = kv.getIntOr("maxInputSize", tuner.maxInputSize);
    tuner.sizeGrowthFactor = static_cast<int>(
        kv.getIntOr("sizeGrowthFactor", tuner.sizeGrowthFactor));
    tuner.trialsPerEvaluation = static_cast<int>(
        kv.getIntOr("trialsPerEvaluation", tuner.trialsPerEvaluation));
    tuner.seed = static_cast<uint64_t>(kv.getIntOr(
        "seed", static_cast<int64_t>(tuner.seed)));
    tuner.cacheEvaluations =
        kv.getIntOr("cacheEvaluations", tuner.cacheEvaluations ? 1 : 0) !=
        0;

    if (tuner.populationSize < 1 || tuner.generationsPerSize < 1 ||
        tuner.minInputSize < 1 ||
        tuner.minInputSize > tuner.maxInputSize ||
        tuner.sizeGrowthFactor < 2 || tuner.trialsPerEvaluation < 1)
        PB_FATAL("create request has out-of-range tuner options");
    return spec;
}

KvFile
SessionSpec::toKv() const
{
    KvFile kv;
    kv.set("spec.benchmark", benchmark);
    kv.set("spec.machine", machine);
    kv.setInt("spec.engineParallelism", engineParallelism);
    kv.setInt("spec.populationSize", tuner.populationSize);
    kv.setInt("spec.generationsPerSize", tuner.generationsPerSize);
    kv.setInt("spec.minInputSize", tuner.minInputSize);
    kv.setInt("spec.maxInputSize", tuner.maxInputSize);
    kv.setInt("spec.sizeGrowthFactor", tuner.sizeGrowthFactor);
    kv.setInt("spec.trialsPerEvaluation", tuner.trialsPerEvaluation);
    kv.setInt("spec.seed", static_cast<int64_t>(tuner.seed));
    kv.setInt("spec.cacheEvaluations", tuner.cacheEvaluations ? 1 : 0);
    kv.setDouble("spec.kernelCompileSeconds",
                 tuner.kernelCompileSeconds);
    kv.setDouble("spec.irCacheSavings", tuner.irCacheSavings);
    kv.setDouble("spec.faultRate", faultRate);
    kv.setInt("spec.faultSeed", faultSeed);
    return kv;
}

SessionSpec
SessionSpec::fromKv(const KvFile &kv)
{
    SessionSpec spec;
    spec.benchmark = kv.get("spec.benchmark");
    spec.machine = kv.get("spec.machine");
    spec.engineParallelism =
        static_cast<int>(kv.getInt("spec.engineParallelism"));
    spec.tuner.populationSize =
        static_cast<int>(kv.getInt("spec.populationSize"));
    spec.tuner.generationsPerSize =
        static_cast<int>(kv.getInt("spec.generationsPerSize"));
    spec.tuner.minInputSize = kv.getInt("spec.minInputSize");
    spec.tuner.maxInputSize = kv.getInt("spec.maxInputSize");
    spec.tuner.sizeGrowthFactor =
        static_cast<int>(kv.getInt("spec.sizeGrowthFactor"));
    spec.tuner.trialsPerEvaluation =
        static_cast<int>(kv.getInt("spec.trialsPerEvaluation"));
    spec.tuner.seed = static_cast<uint64_t>(kv.getInt("spec.seed"));
    spec.tuner.cacheEvaluations = kv.getInt("spec.cacheEvaluations") != 0;
    spec.tuner.kernelCompileSeconds =
        kv.getDouble("spec.kernelCompileSeconds");
    spec.tuner.irCacheSavings = kv.getDouble("spec.irCacheSavings");
    // Absent in pre-fault-injection spool files: default to disabled.
    if (kv.has("spec.faultRate"))
        spec.faultRate = kv.getDouble("spec.faultRate");
    spec.faultSeed = kv.getIntOr("spec.faultSeed", spec.faultSeed);
    return spec;
}

HostedSession::HostedSession(SessionSpec spec,
                             cache::SharedEvaluationCache *sharedCache)
    : spec_(std::move(spec)), benchmark_(apps::findBenchmark(spec_.benchmark)),
      engine_(makeSessionEngine(spec_)), evaluator_(*benchmark_, *engine_),
      session_(evaluator_, benchmark_->seedConfig(), spec_.tuner)
{
    if (sharedCache != nullptr)
        session_.attachSharedCache(sharedCache,
                                   engine_->cacheScope(*benchmark_));
    refreshSnapshot();
}

int
HostedSession::stepMany(int steps, const std::function<void()> &afterStep)
{
    int advanced = 0;
    for (int i = 0; i < steps && !session_.done(); ++i) {
        session_.step();
        ++advanced;
        refreshSnapshot();
        if (afterStep)
            afterStep();
    }
    return advanced;
}

tuner::SessionIntrospection
HostedSession::introspect() const
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    return snapshot_;
}

KvFile
HostedSession::championKv() const
{
    tuner::TuningResult result = session_.result();
    KvFile kv = result.best.toKv();
    kv.setDouble("champion.seconds", result.bestSeconds);
    kv.set("champion.description",
           benchmark_->describeConfig(result.best,
                                      session_.currentInputSize()));
    kv.setInt("champion.done", session_.done() ? 1 : 0);
    return kv;
}

void
HostedSession::save(const std::string &path) const
{
    session_.checkpointKv().saveAtomic(path, "spool.ckpt");
}

void
HostedSession::load(const std::string &path)
{
    session_.load(path);
    refreshSnapshot();
}

void
HostedSession::refreshSnapshot()
{
    tuner::SessionIntrospection view = session_.introspect();
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    snapshot_ = view;
}

tuner::TuningResult
runSpecLocally(const SessionSpec &spec)
{
    // The hosted construction path end-to-end, minus the transport —
    // so a champion comparison really isolates the service machinery.
    HostedSession session(spec);
    session.stepMany(std::numeric_limits<int>::max());
    return session.result();
}

} // namespace service
} // namespace petabricks
