/**
 * @file
 * The autotuning service daemon: many tuning sessions behind a small
 * HTTP command API.
 *
 * Architecture (the pazpar2 shape, sel_thread bridge included):
 *
 *  - ONE I/O thread owns every socket. It runs a poll() loop over the
 *    listener, the live connections, and a self-pipe; all sockets are
 *    non-blocking, requests are parsed incrementally, and responses
 *    are drained through per-connection outboxes. Only commands that
 *    can never wait (status/list/stats/ping/shutdown) execute inline
 *    on this thread — they hold the table mutex for microseconds.
 *
 *  - Session commands that can wait — `step` (long by design), plus
 *    create/champion/resume/stop (which serialize on a possibly-
 *    stepping session or wait for residency capacity) — are fanned out
 *    to a worker pool built on support/ThreadPool: the server parks
 *    one long-running parallelFor() on a pump thread and each index
 *    runs the worker loop, draining a shared command queue. A finished
 *    worker posts the serialized response to a completion queue and
 *    pokes the self-pipe; the I/O thread wakes, matches the response
 *    to its connection (which may have vanished — then it is dropped),
 *    and writes it out. The connection waits; the daemon never does.
 *
 *  - The idle-session sweeper runs off the poll() timeout on the I/O
 *    thread: every sweepIntervalSeconds it asks the SessionTable to
 *    evict idle residents and expire abandoned sessions.
 *
 * Threading contract per command: `step` blocks its *connection* until
 * the requested generations complete (`wait=0` returns 202 immediately
 * and the stepping continues detached); create/champion/resume/stop
 * also run on workers and block only their connection (a champion
 * requested mid-step waits for that step to finish); status/list/
 * stats/ping/shutdown answer inline and never block. Two commands on
 * the *same* session serialize on its entry; commands on different
 * sessions are fully concurrent up to the worker count.
 */

#ifndef PETABRICKS_SERVICE_SERVER_H
#define PETABRICKS_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cache/shared_cache.h"
#include "portfolio/portfolio.h"
#include "service/http.h"
#include "service/session_table.h"
#include "support/socket.h"
#include "support/thread_pool.h"

namespace petabricks {
namespace service {

/** Construction knobs for TuningServer. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0; ///< 0 = ephemeral; read back with port()

    /** Worker threads stepping sessions (>= 1). */
    int workers = 4;

    /** Session hosting knobs (spool dir, cap, GC). */
    SessionTableOptions table;

    /**
     * Shared L2 evaluation cache for every hosted session.
     * `cache.maxBytes = 0` disables the shared tier entirely; a
     * non-empty `cache.dir` persists it across daemon restarts (the
     * segment directory, warm-started at boot). The server owns the
     * cache and injects it into the table; `table.sharedCache` is
     * overwritten by the constructor.
     */
    cache::SharedCacheOptions cache;

    /**
     * Champion portfolio directory: tuned champions (`POST
     * /portfolio/tune`) persist here and are served back (`GET
     * /portfolio/champion`) across daemon restarts. Empty keeps the
     * portfolio in memory only (still fully functional within one
     * daemon lifetime).
     */
    std::string portfolioDir;

    /** Quarantine torn/corrupt portfolio champion files at boot
     * (rename to *.quarantine); mirrors the spool/cache fsck flag. */
    bool portfolioFsck = true;

    /** Seconds between idle-GC sweeps. */
    int64_t sweepIntervalSeconds = 5;

    /** Per-request size cap (headers + body). */
    size_t maxRequestBytes = 1 << 20;

    /**
     * Bound on queued worker commands. A burst beyond this answers
     * `503 Service Unavailable` with a `Retry-After` hint instead of
     * buffering without limit — overload sheds load at the edge, it
     * never grows an unbounded queue of doomed work.
     */
    size_t maxQueueDepth = 128;

    /**
     * Per-request deadline (seconds; 0 disables): a queued command
     * older than this when a worker finally picks it up is answered
     * `503` without being dispatched — the client has usually timed
     * out and retried by then, so running it would double the work.
     */
    int64_t requestDeadlineSeconds = 0;

    /**
     * How many times a supervisor (`tunerd --supervise`) has restarted
     * this daemon over the same state dirs. Purely informational —
     * surfaced as `server.restartCount` in `/stats` so operators (and
     * the smoke test) can see recovery happening.
     */
    int64_t restartCount = 0;
};

/** Per-command request/latency counters (`stats` endpoint). */
struct CommandStats
{
    int64_t count = 0;
    int64_t errors = 0; ///< non-2xx responses
    double totalMicros = 0;
    double maxMicros = 0;
};

/** See file comment. */
class TuningServer
{
  public:
    explicit TuningServer(ServerOptions options);

    /** stop()s if still running. */
    ~TuningServer();

    /** Bind the listener and launch the I/O and worker threads. */
    void start();

    /** Drain and join everything; idempotent. */
    void stop();

    /**
     * Graceful shutdown (the SIGTERM path): stop accepting new worker
     * commands (they get 503 + Retry-After), wait for every queued and
     * in-flight command to finish, checkpoint every resident session
     * to the spool, then stop(). Blocks until done; idempotent with
     * respect to concurrent drain() calls.
     */
    void drain();

    /** True once drain() began (new worker commands are rejected). */
    bool draining() const { return draining_.load(); }

    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }

    SessionTable &table() { return table_; }

    /** The shared L2 cache, or nullptr when disabled. */
    cache::SharedEvaluationCache *sharedCache() { return sharedCache_.get(); }

    /** The champion portfolio (always present; memory-only when no
     * portfolioDir was configured). */
    portfolio::ChampionPortfolio &portfolio() { return *portfolio_; }

    /** True once a client POSTed /shutdown (tunerd polls this). */
    bool shutdownRequested() const { return shutdownRequested_.load(); }

    /** Full server + table counters in KvFile form. */
    KvFile statsKv() const;

  private:
    struct Connection
    {
        net::TcpStream stream;
        HttpParser parser;
        std::string outbox;
        bool closeAfterWrite = false;
        bool awaitingWorker = false; ///< a step response is in flight
        bool peerClosed = false;
    };

    struct WorkItem
    {
        uint64_t connId = 0; ///< 0: detached (fire-and-forget step)
        HttpRequest request;
        std::chrono::steady_clock::time_point enqueued; ///< deadline base
    };

    struct WorkDone
    {
        uint64_t connId = 0;
        std::string wire; ///< serialized HttpResponse
    };

    void ioLoop();
    void workerLoop();

    /** Parse-and-route everything buffered on @p connection. */
    void pumpRequests(uint64_t connId, Connection &connection);

    /** Execute one command and build its response (any thread). */
    HttpResponse dispatch(const HttpRequest &request);

    /** dispatch() + per-command stats accounting. */
    HttpResponse timedDispatch(const HttpRequest &request);

    void recordCommand(const std::string &command, int status,
                       double micros);

    ServerOptions options_;
    /** Declared before table_: sessions hold raw pointers into the
     * cache, so it must outlive every entry the table destroys. */
    std::unique_ptr<cache::SharedEvaluationCache> sharedCache_;
    /** Loaded at construction (quarantining bad files per
     * portfolioFsck); worker threads tune into and dispatch from it. */
    std::unique_ptr<portfolio::ChampionPortfolio> portfolio_;
    SessionTable table_;
    uint16_t port_ = 0;

    std::unique_ptr<net::TcpListener> listener_;
    net::SelfPipe wakeup_;
    std::thread ioThread_;

    // The sel_thread bridge: ThreadPool workers drain workQueue_ and
    // post to doneQueue_; pumpThread_ hosts the pool's parallelFor.
    std::unique_ptr<ThreadPool> pool_;
    std::thread pumpThread_;
    mutable std::mutex workMutex_;
    std::condition_variable workCv_;
    std::deque<WorkItem> workQueue_;
    int busyWorkers_ = 0;            ///< guarded by workMutex_
    std::condition_variable drainCv_; ///< queue empty + workers idle
    std::mutex doneMutex_;
    std::deque<WorkDone> doneQueue_;

    std::map<uint64_t, Connection> connections_;
    uint64_t nextConnId_ = 0;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownRequested_{false};
    std::atomic<bool> draining_{false};
    std::atomic<int64_t> backpressureRejections_{0};
    std::atomic<int64_t> deadlineRejections_{0};

    mutable std::mutex statsMutex_;
    std::map<std::string, CommandStats> commandStats_;
    int64_t connectionsAccepted_ = 0;
    int64_t requestsServed_ = 0;
    std::chrono::steady_clock::time_point startTime_{};
};

} // namespace service
} // namespace petabricks

#endif // PETABRICKS_SERVICE_SERVER_H
