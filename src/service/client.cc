#include "service/client.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "support/error.h"

namespace petabricks {
namespace service {

Client::Client(const std::string &host, uint16_t port, int timeoutMillis)
    : host_(host), timeoutMillis_(timeoutMillis),
      stream_(net::TcpStream::connect(host, port, timeoutMillis))
{}

KvFile
Client::command(const std::string &method, const std::string &target,
                const std::string &body)
{
    std::ostringstream request;
    request << method << ' ' << target << " HTTP/1.1\r\n"
            << "Host: " << host_ << "\r\n"
            << "Content-Length: " << body.size() << "\r\n"
            << "Connection: keep-alive\r\n\r\n"
            << body;
    stream_.writeAll(request.str());

    // ---- Read one response (headers, then Content-Length body) --------
    lastTransientWas503_ = false;
    auto readMore = [&] {
        if (timeoutMillis_ > 0 &&
            !net::waitReadable(stream_.fd(), timeoutMillis_))
            PB_TRANSIENT("timed out after "
                         << timeoutMillis_
                         << "ms awaiting a response from the daemon");
        char buffer[16384];
        ptrdiff_t n = stream_.read(buffer, sizeof(buffer));
        if (n <= 0)
            PB_FATAL("connection closed by tuning daemon");
        inbox_.append(buffer, static_cast<size_t>(n));
    };
    size_t headerEnd;
    while ((headerEnd = inbox_.find("\r\n\r\n")) == std::string::npos)
        readMore();

    std::string statusLine = inbox_.substr(0, inbox_.find("\r\n"));
    std::istringstream status(statusLine);
    std::string version;
    int code = 0;
    if (!(status >> version >> code) || version.rfind("HTTP/1.", 0) != 0)
        PB_FATAL("malformed response from daemon: '" << statusLine
                                                     << "'");

    size_t bodySize = 0;
    {
        // Case-insensitivity dodged: the daemon always sends
        // "Content-Length".
        size_t pos = inbox_.find("Content-Length:");
        if (pos == std::string::npos || pos > headerEnd)
            PB_FATAL("daemon response lacks Content-Length");
        bodySize = static_cast<size_t>(
            std::strtoull(inbox_.c_str() + pos + 15, nullptr, 10));
    }
    while (inbox_.size() < headerEnd + 4 + bodySize)
        readMore();
    std::string headerBlock = inbox_.substr(0, headerEnd);
    std::string responseBody = inbox_.substr(headerEnd + 4, bodySize);
    inbox_.erase(0, headerEnd + 4 + bodySize);

    KvFile kv = KvFile::fromString(responseBody);
    if (code == 503) {
        // Backpressure or drain: the daemon asked us to come back, so
        // callers with a retry loop must be able to tell this apart
        // from a genuine failure. Remember its Retry-After hint (the
        // daemon always spells the header exactly "Retry-After", like
        // "Content-Length" above).
        lastRetryAfterSeconds_ = -1;
        if (size_t pos = headerBlock.find("Retry-After:");
            pos != std::string::npos)
            lastRetryAfterSeconds_ = static_cast<int>(
                std::strtol(headerBlock.c_str() + pos + 12, nullptr, 10));
        lastTransientWas503_ = true;
        PB_TRANSIENT("daemon busy (503): "
                     << (kv.has("error") ? kv.get("error")
                                         : responseBody));
    }
    if (code >= 400)
        PB_FATAL("daemon error " << code << ": "
                                 << (kv.has("error") ? kv.get("error")
                                                     : responseBody));
    return kv;
}

KvFile
Client::commandWithRetry(const std::string &method,
                         const std::string &target,
                         const std::string &body)
{
    for (int attempt = 0;; ++attempt) {
        try {
            return command(method, target, body);
        } catch (const TransientError &) {
            // Only a completed 503 is safe to resend (see
            // ClientRetryPolicy) — a timeout may have executed.
            if (!lastTransientWas503_ || attempt >= retry_.attempts)
                throw;
        }
        // Honor the server's Retry-After hint when it sent one;
        // exponential fallback otherwise. Both capped, both jittered —
        // deterministically (xorshift64), so tests can bound the total.
        long long sleepMillis =
            lastRetryAfterSeconds_ >= 0
                ? 1000LL * lastRetryAfterSeconds_
                : static_cast<long long>(retry_.fallbackBaseMillis)
                      << std::min(attempt, 20);
        sleepMillis = std::min(
            sleepMillis, static_cast<long long>(retry_.maxSleepMillis));
        if (retry_.jitterCapMillis > 0) {
            if (jitterState_ == 0)
                jitterState_ = retry_.jitterSeed | 1;
            jitterState_ ^= jitterState_ << 13;
            jitterState_ ^= jitterState_ >> 7;
            jitterState_ ^= jitterState_ << 17;
            sleepMillis += static_cast<long long>(
                jitterState_ %
                static_cast<uint64_t>(retry_.jitterCapMillis));
        }
        if (sleepMillis > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleepMillis));
    }
}

void
Client::ping()
{
    command("GET", "/ping");
}

std::string
Client::create(const KvFile &options)
{
    return commandWithRetry("POST", "/create", options.toString())
        .get("session");
}

int
Client::step(const std::string &sessionId, int steps, bool wait)
{
    std::string target = "/step?session=" + sessionId +
                         "&steps=" + std::to_string(steps);
    if (!wait)
        target += "&wait=0";
    KvFile kv = commandWithRetry("POST", target);
    return wait ? static_cast<int>(kv.getInt("step.advanced")) : 0;
}

KvFile
Client::status(const std::string &sessionId)
{
    return command("GET", "/status?session=" + sessionId);
}

tuner::SessionIntrospection
Client::introspect(const std::string &sessionId)
{
    KvFile kv = status(sessionId);
    tuner::SessionIntrospection view;
    view.done = kv.getInt("status.done") != 0;
    view.completedSteps =
        static_cast<int>(kv.getInt("status.completedSteps"));
    view.totalSteps = static_cast<int>(kv.getInt("status.totalSteps"));
    view.generation = static_cast<int>(kv.getInt("status.generation"));
    view.generationsPerSize =
        static_cast<int>(kv.getInt("status.generationsPerSize"));
    view.currentInputSize = kv.getInt("status.currentInputSize");
    view.populationSize =
        static_cast<size_t>(kv.getInt("status.populationSize"));
    view.bestSeconds = kv.getDouble("status.bestSeconds");
    view.evaluations = kv.getInt("status.evaluations");
    view.mutationsAccepted = kv.getInt("status.mutationsAccepted");
    view.mutationsRejected = kv.getInt("status.mutationsRejected");
    view.cacheHits = kv.getInt("status.cacheHits");
    view.tuningSeconds = kv.getDouble("status.tuningSeconds");
    view.compileSeconds = kv.getDouble("status.compileSeconds");
    view.cacheStats.hits = kv.getInt("cache.hits");
    view.cacheStats.misses = kv.getInt("cache.misses");
    view.cacheStats.insertions = kv.getInt("cache.insertions");
    view.cacheStats.invalidated = kv.getInt("cache.invalidated");
    return view;
}

KvFile
Client::runToCompletion(const std::string &sessionId, int stepsPerCall)
{
    while (!introspect(sessionId).done)
        step(sessionId, stepsPerCall);
    return champion(sessionId);
}

KvFile
Client::champion(const std::string &sessionId)
{
    return commandWithRetry("GET", "/champion?session=" + sessionId);
}

void
Client::stopSession(const std::string &sessionId)
{
    commandWithRetry("POST", "/stop?session=" + sessionId);
}

void
Client::resume(const std::string &sessionId)
{
    commandWithRetry("POST", "/resume?session=" + sessionId);
}

KvFile
Client::stats()
{
    return command("GET", "/stats");
}

KvFile
Client::machines()
{
    return command("GET", "/machines");
}

KvFile
Client::portfolio()
{
    return command("GET", "/portfolio");
}

KvFile
Client::portfolioChampion(const std::string &benchmark,
                          const std::string &machine, int64_t n)
{
    return commandWithRetry("GET",
                            "/portfolio/champion?benchmark=" + benchmark +
                                "&machine=" + machine +
                                "&n=" + std::to_string(n));
}

KvFile
Client::portfolioTune(const KvFile &options)
{
    return commandWithRetry("POST", "/portfolio/tune", options.toString());
}

void
Client::shutdownServer()
{
    command("POST", "/shutdown");
}

} // namespace service
} // namespace petabricks
