/**
 * @file
 * Native dense linear algebra kernels — the "external library" choice.
 *
 * The paper's Strassen and SVD benchmarks include "calling the LAPACK
 * external library" among their algorithmic choices. No LAPACK is
 * available offline, so this module plays that role: cache-blocked,
 * single-threaded kernels that are markedly faster than naive loops
 * (modeled via kLibraryFlopSpeedup) but opaque to the compiler — rules
 * wrapping them carry callsExternalLibrary() and can never be mapped to
 * OpenCL, exactly like LAPACK calls in PetaBricks.
 */

#ifndef PETABRICKS_BLAS_BLAS_H
#define PETABRICKS_BLAS_BLAS_H

#include "sim/cost_model.h"
#include "support/matrix.h"

namespace petabricks {
namespace blas {

/**
 * Effective arithmetic-throughput multiple of tuned library code over
 * the scalar native backend (vectorization + register blocking). Used
 * by the cost model for rules that call into this module.
 */
inline constexpr double kLibraryFlopSpeedup = 8.0;

/** C = A * B (dimensions must agree; C is overwritten). */
void gemm(const MatrixD &a, const MatrixD &b, MatrixD &c);

/** C = A * B into the region c[x0.., y0..] (for recursive combines). */
void gemmInto(const MatrixD &a, const MatrixD &b, MatrixD &c, int64_t x0,
              int64_t y0);

/** C += A * B. */
void gemmAccumulate(const MatrixD &a, const MatrixD &b, MatrixD &c);

/** B = A^T. */
void transpose(const MatrixD &a, MatrixD &b);

/** y = A * x for a column vector x (x, y are 1-D matrices). */
void gemv(const MatrixD &a, const MatrixD &x, MatrixD &y);

/** Dot product of two equal-length vectors. */
double dot(const MatrixD &x, const MatrixD &y);

/** Euclidean norm of a vector. */
double norm2(const MatrixD &x);

/** x *= alpha. */
void scale(MatrixD &x, double alpha);

/** y += alpha * x. */
void axpy(double alpha, const MatrixD &x, MatrixD &y);

/** Frobenius norm of the difference of two equal-shape matrices. */
double frobeniusDiff(const MatrixD &a, const MatrixD &b);

/** Modeled cost of a library dgemm of (m x k) * (k x n). */
sim::CostReport gemmCost(int64_t m, int64_t k, int64_t n);

} // namespace blas
} // namespace petabricks

#endif // PETABRICKS_BLAS_BLAS_H
