#include "blas/blas.h"

#include <cmath>

#include "support/error.h"

namespace petabricks {
namespace blas {

namespace {

/** Cache block edge (elements) for the blocked gemm. */
constexpr int64_t kBlock = 64;

} // namespace

void
gemmInto(const MatrixD &a, const MatrixD &b, MatrixD &c, int64_t x0,
         int64_t y0)
{
    int64_t m = a.height(), k = a.width(), n = b.width();
    PB_ASSERT(b.height() == k, "gemm inner dims disagree: " << k << " vs "
                                                            << b.height());
    PB_ASSERT(x0 + n <= c.width() && y0 + m <= c.height(),
              "gemm output region out of bounds");
    const double *A = a.data();
    const double *B = b.data();
    double *C = c.data();
    int64_t cw = c.width();

    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            C[(y0 + i) * cw + (x0 + j)] = 0.0;

    // i-k-j loop order with blocking: streams B rows, accumulates C rows.
    for (int64_t ii = 0; ii < m; ii += kBlock) {
        int64_t iEnd = std::min(m, ii + kBlock);
        for (int64_t kk = 0; kk < k; kk += kBlock) {
            int64_t kEnd = std::min(k, kk + kBlock);
            for (int64_t i = ii; i < iEnd; ++i) {
                for (int64_t p = kk; p < kEnd; ++p) {
                    double aip = A[i * k + p];
                    const double *brow = B + p * n;
                    double *crow = C + (y0 + i) * cw + x0;
                    for (int64_t j = 0; j < n; ++j)
                        crow[j] += aip * brow[j];
                }
            }
        }
    }
}

void
gemm(const MatrixD &a, const MatrixD &b, MatrixD &c)
{
    PB_ASSERT(c.width() == b.width() && c.height() == a.height(),
              "gemm output shape mismatch");
    gemmInto(a, b, c, 0, 0);
}

void
gemmAccumulate(const MatrixD &a, const MatrixD &b, MatrixD &c)
{
    int64_t m = a.height(), k = a.width(), n = b.width();
    PB_ASSERT(b.height() == k && c.width() == n && c.height() == m,
              "gemmAccumulate shape mismatch");
    const double *A = a.data();
    const double *B = b.data();
    double *C = c.data();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            double aip = A[i * k + p];
            const double *brow = B + p * n;
            double *crow = C + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += aip * brow[j];
        }
    }
}

void
transpose(const MatrixD &a, MatrixD &b)
{
    PB_ASSERT(b.width() == a.height() && b.height() == a.width(),
              "transpose shape mismatch");
    for (int64_t y = 0; y < a.height(); ++y)
        for (int64_t x = 0; x < a.width(); ++x)
            b.at(y, x) = a.at(x, y);
}

void
gemv(const MatrixD &a, const MatrixD &x, MatrixD &y)
{
    PB_ASSERT(x.size() == a.width() && y.size() == a.height(),
              "gemv shape mismatch");
    for (int64_t i = 0; i < a.height(); ++i) {
        double sum = 0.0;
        for (int64_t j = 0; j < a.width(); ++j)
            sum += a.at(j, i) * x[j];
        y[i] = sum;
    }
}

double
dot(const MatrixD &x, const MatrixD &y)
{
    PB_ASSERT(x.size() == y.size(), "dot length mismatch");
    double sum = 0.0;
    for (int64_t i = 0; i < x.size(); ++i)
        sum += x[i] * y[i];
    return sum;
}

double
norm2(const MatrixD &x)
{
    return std::sqrt(dot(x, x));
}

void
scale(MatrixD &x, double alpha)
{
    for (int64_t i = 0; i < x.size(); ++i)
        x[i] *= alpha;
}

void
axpy(double alpha, const MatrixD &x, MatrixD &y)
{
    PB_ASSERT(x.size() == y.size(), "axpy length mismatch");
    for (int64_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

double
frobeniusDiff(const MatrixD &a, const MatrixD &b)
{
    PB_ASSERT(a.width() == b.width() && a.height() == b.height(),
              "frobeniusDiff shape mismatch");
    double sum = 0.0;
    for (int64_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

sim::CostReport
gemmCost(int64_t m, int64_t k, int64_t n)
{
    sim::CostReport cost;
    // Library code is vectorized: report the flops it would take the
    // scalar backend to match (2mkn real flops / speedup).
    cost.flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                 static_cast<double>(n) / kLibraryFlopSpeedup;
    cost.globalBytesRead =
        (static_cast<double>(m) * k + static_cast<double>(k) * n) * 8.0;
    cost.globalBytesWritten = static_cast<double>(m) * n * 8.0;
    cost.sequentialFraction = 1.0; // single-threaded library call
    return cost;
}

} // namespace blas
} // namespace petabricks
