#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace petabricks {
namespace sim {

CostReport &
CostReport::operator+=(const CostReport &other)
{
    // Combine the sequential fractions weighted by arithmetic volume so
    // that merging a serial task into a large parallel one keeps the
    // Amdahl limit meaningful.
    double totalFlops = flops + other.flops;
    if (totalFlops > 0.0) {
        sequentialFraction =
            (sequentialFraction * flops +
             other.sequentialFraction * other.flops) / totalFlops;
    }
    flops = totalFlops;
    globalBytesRead += other.globalBytesRead;
    globalBytesWritten += other.globalBytesWritten;
    localBytes += other.localBytes;
    workItems += other.workItems;
    barriers += other.barriers;
    invocations += other.invocations;
    return *this;
}

CostReport
CostReport::operator+(const CostReport &other) const
{
    CostReport sum = *this;
    sum += other;
    return sum;
}

double
CostModel::groupEfficiency(const DeviceSpec &dev, int localWorkSize)
{
    PB_ASSERT(localWorkSize > 0, "local work size must be positive");
    double eff = 1.0;
    if (localWorkSize < dev.simdWidth) {
        // Underfilled warps/wavefronts: idle lanes scale throughput down.
        eff *= static_cast<double>(localWorkSize) / dev.simdWidth;
    }
    if (dev.type == DeviceType::Gpu) {
        // Very large groups reduce occupancy (register/scratch pressure).
        constexpr int kOccupancyKnee = 256;
        if (localWorkSize > kOccupancyKnee) {
            eff *= 1.0 /
                   (1.0 + 0.0015 * (localWorkSize - kOccupancyKnee));
        }
        // Tiny-group launches also pay extra scheduling per group; fold a
        // mild penalty in so the tuner has a real optimum to find.
        constexpr int kSchedulingKnee = 16;
        if (localWorkSize < kSchedulingKnee)
            eff *= 0.85;
    }
    return std::max(eff, 1e-3);
}

double
CostModel::kernelSeconds(const DeviceSpec &dev, const CostReport &report,
                         int localWorkSize)
{
    double eff = groupEfficiency(dev, localWorkSize);
    double computeSec =
        report.flops / std::max(dev.peakGflops() * 1e9 * eff, 1.0);

    double globalTraffic = report.globalBytes();
    double localTraffic = report.localBytes;
    if (!dev.dedicatedLocalMem) {
        // No scratchpad: "local" traffic rides the normal memory path,
        // i.e. the cooperative prefetch phase is pure added traffic.
        globalTraffic += localTraffic;
        localTraffic = 0.0;
    }
    double memSec =
        globalTraffic / std::max(dev.memBandwidthGBs * 1e9, 1.0) +
        localTraffic / std::max(dev.localMemBandwidthGBs * 1e9, 1.0);

    // Barriers serialize each work-group briefly; wider devices hide
    // more of that latency by running more groups concurrently.
    constexpr double kBarrierSecPer32Lanes = 70e-9;
    double width = std::max(1.0, dev.cores / 32.0);
    double barrierSec = report.barriers * kBarrierSecPer32Lanes / width;

    double launchSec = report.invocations * dev.launchLatencyUs * 1e-6;
    return launchSec + std::max(computeSec, memSec) + barrierSec;
}

double
CostModel::cpuSeconds(const DeviceSpec &dev, const CostReport &report,
                      int threads)
{
    PB_ASSERT(threads > 0, "thread count must be positive");
    int usable = std::min(threads, dev.cores);
    double seq = std::clamp(report.sequentialFraction, 0.0, 1.0);
    // Amdahl: sequential part runs on one core, the rest scales.
    double perCore = dev.gflopsPerCore * 1e9;
    double computeSec = report.flops * seq / perCore +
                        report.flops * (1.0 - seq) / (perCore * usable);
    double memSec =
        report.globalBytes() / std::max(dev.memBandwidthGBs * 1e9, 1.0);
    double launchSec = report.invocations * dev.launchLatencyUs * 1e-6;
    return launchSec + std::max(computeSec, memSec);
}

} // namespace sim
} // namespace petabricks
