/**
 * @file
 * Discrete-event simulator for heterogeneous task schedules.
 *
 * The runtime (src/runtime) executes task DAGs for real; this simulator
 * *replays* the same DAG shape against a MachineProfile to produce a
 * deterministic makespan on the paper's machines. Resources mirror the
 * runtime's structure: a pool of CPU workers (work-stealing is modeled as
 * greedy list scheduling, which matches its steady-state behavior), a
 * single in-order GPU queue served by the GPU management thread, and a
 * transfer engine that overlaps copies with kernel execution (the paper's
 * non-blocking copy design). On machines whose OpenCL device shares the
 * host CPU (Server), OpenCL tasks occupy the CPU pool instead.
 */

#ifndef PETABRICKS_SIM_SCHED_SIM_H
#define PETABRICKS_SIM_SCHED_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace petabricks {
namespace sim {

/** Execution resource a simulated task occupies. */
enum class SimResource
{
    /** One slot of the CPU worker pool. */
    CpuWorker,
    /** The whole CPU pool at once (parallel-for style native tasks). */
    CpuPool,
    /** The in-order OpenCL command queue. */
    GpuQueue,
    /** The host<->device DMA engine. */
    Transfer,
    /** Zero-duration scheduling marker (prepare tasks, joins). */
    None,
};

/** Handle to a task added to the simulator. */
using SimTaskId = int32_t;

/**
 * Greedy list-scheduling discrete-event simulator.
 *
 * Tasks are released when all dependencies complete and dispatched in
 * release order to the first free slot of their resource.
 */
class ScheduleSimulator
{
  public:
    /**
     * @param cpuWorkers number of CPU worker slots.
     * @param oclSharesCpu if true, GpuQueue tasks also consume the whole
     *        CPU pool while running (CPU OpenCL runtime on Server).
     */
    explicit ScheduleSimulator(int cpuWorkers, bool oclSharesCpu = false);

    /** Convenience: size the pool from a machine profile. */
    explicit ScheduleSimulator(const MachineProfile &machine);

    /**
     * Add a task.
     *
     * @param resource where the task runs.
     * @param seconds execution time on that resource.
     * @param deps tasks that must complete first.
     * @param label optional name for tracing.
     * @return id usable as a dependency of later tasks.
     */
    SimTaskId addTask(SimResource resource, double seconds,
                      const std::vector<SimTaskId> &deps = {},
                      std::string label = "");

    /**
     * Run to completion.
     * @return makespan in seconds (0 for an empty DAG).
     */
    double run();

    /** Completion time of @p task; only valid after run(). */
    double finishTime(SimTaskId task) const;

    /** Busy time accumulated on the CPU pool, for utilization checks. */
    double cpuBusySeconds() const { return cpuBusy_; }

    /** Busy time accumulated on the GPU queue. */
    double gpuBusySeconds() const { return gpuBusy_; }

    size_t taskCount() const { return tasks_.size(); }

  private:
    struct TaskRecord
    {
        SimResource resource;
        double seconds;
        std::vector<SimTaskId> dependents;
        int remainingDeps;
        double finish = -1.0;
        std::string label;
    };

    int cpuWorkers_;
    bool oclSharesCpu_;
    std::vector<TaskRecord> tasks_;
    double cpuBusy_ = 0.0;
    double gpuBusy_ = 0.0;
    bool ran_ = false;
};

} // namespace sim
} // namespace petabricks

#endif // PETABRICKS_SIM_SCHED_SIM_H
