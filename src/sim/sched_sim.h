/**
 * @file
 * Discrete-event simulator for heterogeneous task schedules.
 *
 * The runtime (src/runtime) executes task DAGs for real; this simulator
 * *replays* the same DAG shape against a MachineProfile to produce a
 * deterministic makespan on the paper's machines. Resources mirror the
 * runtime's structure: a pool of CPU workers (work-stealing is modeled as
 * greedy list scheduling, which matches its steady-state behavior), a
 * single in-order GPU queue served by the GPU management thread, and a
 * transfer engine that overlaps copies with kernel execution (the paper's
 * non-blocking copy design). On machines whose OpenCL device shares the
 * host CPU (Server), OpenCL tasks occupy the CPU pool instead.
 *
 * The simulator sits on the autotuner's innermost hot path (one run per
 * priced configuration), so the task store is struct-of-arrays with a
 * flat dependency edge list, and all run() scratch is reused: a
 * simulator instance reset() between runs performs no steady-state
 * allocation. Scheduling order is deterministic — the running-task heap
 * is keyed by (finish, sequence), a total order — so results are
 * independent of internal representation.
 */

#ifndef PETABRICKS_SIM_SCHED_SIM_H
#define PETABRICKS_SIM_SCHED_SIM_H

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/machine.h"

namespace petabricks {
namespace sim {

/** Execution resource a simulated task occupies. */
enum class SimResource
{
    /** One slot of the CPU worker pool. */
    CpuWorker,
    /** The whole CPU pool at once (parallel-for style native tasks). */
    CpuPool,
    /** The in-order OpenCL command queue. */
    GpuQueue,
    /** The host<->device DMA engine. */
    Transfer,
    /** Zero-duration scheduling marker (prepare tasks, joins). */
    None,
};

/** Handle to a task added to the simulator. */
using SimTaskId = int32_t;

/**
 * Greedy list-scheduling discrete-event simulator.
 *
 * Tasks are released when all dependencies complete and dispatched in
 * release order to the first free slot of their resource.
 */
class ScheduleSimulator
{
  public:
    /**
     * @param cpuWorkers number of CPU worker slots.
     * @param oclSharesCpu if true, GpuQueue tasks also consume the whole
     *        CPU pool while running (CPU OpenCL runtime on Server).
     */
    explicit ScheduleSimulator(int cpuWorkers, bool oclSharesCpu = false);

    /** Convenience: size the pool from a machine profile. */
    explicit ScheduleSimulator(const MachineProfile &machine);

    /**
     * Make the instance ready for a fresh run with the same resource
     * configuration: drops all tasks but keeps every buffer's capacity,
     * so a reused simulator allocates nothing in steady state (the
     * model-mode fast path keeps one per thread).
     */
    void reset();

    /** reset() and re-configure the resources from @p machine. */
    void
    reset(const MachineProfile &machine)
    {
        cpuWorkers_ = machine.workerThreads;
        oclSharesCpu_ = machine.oclSharesCpu;
        reset();
    }

    /**
     * Add a task.
     *
     * @param resource where the task runs.
     * @param seconds execution time on that resource.
     * @param deps tasks that must complete first.
     * @return id usable as a dependency of later tasks.
     */
    SimTaskId addTask(SimResource resource, double seconds,
                      const std::vector<SimTaskId> &deps = {});

    /**
     * addTask() with a tracing/debugging label. Labels never affect
     * scheduling and are stored sparsely, so the unlabeled overload —
     * the model-mode fast path — stays allocation-free.
     */
    SimTaskId addTask(SimResource resource, double seconds,
                      const std::vector<SimTaskId> &deps,
                      std::string label);

    /**
     * Run to completion.
     * @return makespan in seconds (0 for an empty DAG).
     */
    double run();

    /** Completion time of @p task; only valid after run(). */
    double finishTime(SimTaskId task) const;

    /** Tracing label of @p task ("" if it was added unlabeled). */
    const std::string &taskLabel(SimTaskId task) const;

    /** Busy time accumulated on the CPU pool, for utilization checks. */
    double cpuBusySeconds() const { return cpuBusy_; }

    /** Busy time accumulated on the GPU queue. */
    double gpuBusySeconds() const { return gpuBusy_; }

    size_t taskCount() const { return resource_.size(); }

  private:
    int cpuWorkers_;
    bool oclSharesCpu_;

    // Task store, struct-of-arrays (indexed by SimTaskId).
    std::vector<SimResource> resource_;
    std::vector<double> seconds_;
    std::vector<int> remainingDeps_;
    std::vector<double> finish_;

    /** Sparse labels: only labeled tasks pay for storage. */
    std::vector<std::pair<SimTaskId, std::string>> labels_;

    /** (parent, child) dependency edges in insertion order. */
    std::vector<std::pair<SimTaskId, SimTaskId>> edges_;

    /**
     * Running-task heap entry: (finish, (sequence << 32) | id). The
     * packed word orders exactly like the (sequence, id) pair — the
     * sequence is unique and occupies the high bits — so the heap's
     * total order matches the original tuple formulation.
     */
    struct Running
    {
        double finish;
        uint64_t seqId;

        bool
        operator>(const Running &other) const
        {
            return finish != other.finish ? finish > other.finish
                                          : seqId > other.seqId;
        }
    };

    // run() scratch, reused across reset() cycles.
    std::vector<int32_t> depStart_;   // CSR offsets into depList_
    std::vector<SimTaskId> depList_;  // dependents, per-parent in order
    std::vector<SimTaskId> cpuReady_; // FIFO queues: vector + head index
    std::vector<SimTaskId> gpuReady_;
    std::vector<SimTaskId> xferReady_;
    std::vector<Running> heap_;

    double cpuBusy_ = 0.0;
    double gpuBusy_ = 0.0;
    bool ran_ = false;
};

} // namespace sim
} // namespace petabricks

#endif // PETABRICKS_SIM_SCHED_SIM_H
