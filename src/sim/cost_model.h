/**
 * @file
 * Roofline-style cost model turning operation counts into seconds.
 *
 * Emulated OpenCL kernels (src/ocl) report a CostReport of arithmetic and
 * memory-traffic counts; the CostModel combines it with a DeviceSpec to a
 * deterministic execution time. The model is intentionally simple — a
 * launch latency plus max(compute, memory) roofline with a work-group
 * efficiency factor — because the paper's conclusions rest on *relative*
 * behavior (which choice wins where, and where crossovers fall), not on
 * absolute times.
 */

#ifndef PETABRICKS_SIM_COST_MODEL_H
#define PETABRICKS_SIM_COST_MODEL_H

#include <cstdint>

#include "sim/device_spec.h"

namespace petabricks {
namespace sim {

/**
 * Operation counts accumulated by one kernel launch or CPU task.
 *
 * Counts are doubles so analytic estimates for very large problem sizes
 * do not overflow.
 */
struct CostReport
{
    /** Floating point operations executed. */
    double flops = 0.0;

    /** Bytes read from global/main memory. */
    double globalBytesRead = 0.0;

    /** Bytes written to global/main memory. */
    double globalBytesWritten = 0.0;

    /** Bytes moved through OpenCL local memory (scratchpad). */
    double localBytes = 0.0;

    /** Total work-items across the launch (0 for CPU tasks). */
    double workItems = 0.0;

    /** Work-group barriers executed (synchronization overhead). */
    double barriers = 0.0;

    /** Kernel launches represented by this report. */
    double invocations = 1.0;

    /**
     * Fraction of the arithmetic that must run sequentially (limits
     * multi-core scaling of CPU tasks; 0 = perfectly parallel).
     */
    double sequentialFraction = 0.0;

    CostReport &operator+=(const CostReport &other);
    CostReport operator+(const CostReport &other) const;

    /** Total global memory traffic (read + write). */
    double
    globalBytes() const
    {
        return globalBytesRead + globalBytesWritten;
    }
};

/** Cost model evaluating kernels and CPU tasks against a DeviceSpec. */
class CostModel
{
  public:
    /**
     * Seconds for an OpenCL kernel launch with traffic @p report on
     * device @p dev using work-groups of @p localWorkSize items.
     *
     * Local-memory traffic is free-ish on devices with a dedicated
     * scratchpad, but on CpuOpenCL devices it is retargeted at the
     * regular memory system — reproducing the paper's observation that
     * explicit prefetching is wasted work on CPU OpenCL runtimes.
     */
    static double kernelSeconds(const DeviceSpec &dev,
                                const CostReport &report,
                                int localWorkSize);

    /**
     * Seconds for a native CPU task using @p threads worker threads.
     * Applies Amdahl scaling via report.sequentialFraction.
     */
    static double cpuSeconds(const DeviceSpec &dev,
                             const CostReport &report, int threads);

    /**
     * Work-group efficiency in (0, 1]: penalizes groups smaller than the
     * SIMD width (idle lanes) and very large groups (occupancy loss).
     */
    static double groupEfficiency(const DeviceSpec &dev, int localWorkSize);
};

} // namespace sim
} // namespace petabricks

#endif // PETABRICKS_SIM_COST_MODEL_H
