/**
 * @file
 * Static descriptions of compute devices.
 *
 * The paper evaluates on three physical machines (Figure 9). This build
 * environment has no GPU, so those machines are reproduced as calibrated
 * performance models: a DeviceSpec captures the throughput/latency
 * characteristics the paper's analysis attributes to each processor, and
 * the cost model (cost_model.h) turns kernel operation counts into
 * deterministic execution times. See DESIGN.md Section 2 for the
 * substitution rationale.
 */

#ifndef PETABRICKS_SIM_DEVICE_SPEC_H
#define PETABRICKS_SIM_DEVICE_SPEC_H

#include <string>

namespace petabricks {
namespace sim {

/** Broad class of a compute device. */
enum class DeviceType
{
    /** Conventional CPU cores running native code. */
    Cpu,
    /** Discrete GPU reached through the OpenCL runtime. */
    Gpu,
    /** OpenCL runtime that generates vectorized code on the host CPU. */
    CpuOpenCL,
};

/** Human-readable name of a device type. */
const char *deviceTypeName(DeviceType type);

/**
 * Performance description of one compute device.
 *
 * Throughputs are peaks; the cost model applies efficiency factors for
 * work-group shape and launch overheads on top of these.
 */
struct DeviceSpec
{
    std::string name;
    DeviceType type = DeviceType::Cpu;

    /** Hardware parallelism: CPU cores, or GPU scalar-processor lanes. */
    int cores = 1;

    /** Peak arithmetic throughput per core, GFLOP/s. */
    double gflopsPerCore = 1.0;

    /** Aggregate global/main memory bandwidth, GB/s. */
    double memBandwidthGBs = 10.0;

    /**
     * Aggregate scratchpad (OpenCL local memory) bandwidth, GB/s. Only
     * meaningful when dedicatedLocalMem is true.
     */
    double localMemBandwidthGBs = 100.0;

    /**
     * True if local memory is a real on-chip scratchpad. On CPU OpenCL
     * runtimes local memory maps onto the same caches and buses as
     * ordinary loads/stores, so the explicit prefetch phase is pure
     * overhead (Section 2.2 of the paper).
     */
    bool dedicatedLocalMem = false;

    /** Fixed cost of launching one kernel, microseconds. */
    double launchLatencyUs = 0.0;

    /**
     * Preferred SIMD width: work-groups smaller than this leave lanes
     * idle on GPUs (warp/wavefront width), and vector lanes idle on CPU
     * OpenCL runtimes.
     */
    int simdWidth = 1;

    /** Peak device GFLOP/s (cores x per-core throughput). */
    double peakGflops() const { return cores * gflopsPerCore; }
};

/**
 * Host-device interconnect model (PCIe for discrete GPUs).
 *
 * A CpuOpenCL device shares the host address space, so its transfer model
 * has zero latency and infinite effective bandwidth.
 */
struct TransferModel
{
    /** Fixed per-transfer latency, microseconds. */
    double latencyUs = 0.0;

    /** Transfer bandwidth, GB/s; <= 0 means free (shared memory). */
    double bandwidthGBs = 0.0;

    /** Seconds to move @p bytes one way. */
    double
    seconds(double bytes) const
    {
        if (bandwidthGBs <= 0.0)
            return 0.0;
        return latencyUs * 1e-6 + bytes / (bandwidthGBs * 1e9);
    }

    bool isFree() const { return bandwidthGBs <= 0.0; }
};

} // namespace sim
} // namespace petabricks

#endif // PETABRICKS_SIM_DEVICE_SPEC_H
