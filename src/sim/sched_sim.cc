#include "sim/sched_sim.h"

#include <algorithm>

#include "support/error.h"

namespace petabricks {
namespace sim {

ScheduleSimulator::ScheduleSimulator(int cpuWorkers, bool oclSharesCpu)
    : cpuWorkers_(cpuWorkers), oclSharesCpu_(oclSharesCpu)
{
    PB_ASSERT(cpuWorkers > 0, "need at least one CPU worker");
}

ScheduleSimulator::ScheduleSimulator(const MachineProfile &machine)
    : ScheduleSimulator(machine.workerThreads, machine.oclSharesCpu)
{
}

void
ScheduleSimulator::reset()
{
    PB_ASSERT(cpuWorkers_ > 0, "need at least one CPU worker");
    resource_.clear();
    seconds_.clear();
    remainingDeps_.clear();
    finish_.clear();
    labels_.clear();
    edges_.clear();
    cpuBusy_ = 0.0;
    gpuBusy_ = 0.0;
    ran_ = false;
}

SimTaskId
ScheduleSimulator::addTask(SimResource resource, double seconds,
                           const std::vector<SimTaskId> &deps)
{
    PB_ASSERT(!ran_, "cannot add tasks after run()");
    PB_ASSERT(seconds >= 0.0, "negative task duration");
    SimTaskId id = static_cast<SimTaskId>(resource_.size());
    resource_.push_back(resource);
    seconds_.push_back(seconds);
    finish_.push_back(-1.0);
    int remaining = 0;
    for (SimTaskId dep : deps) {
        PB_ASSERT(dep >= 0 && dep < id, "dependency " << dep
                                                      << " out of range");
        edges_.emplace_back(dep, id);
        ++remaining;
    }
    remainingDeps_.push_back(remaining);
    return id;
}

SimTaskId
ScheduleSimulator::addTask(SimResource resource, double seconds,
                           const std::vector<SimTaskId> &deps,
                           std::string label)
{
    SimTaskId id = addTask(resource, seconds, deps);
    if (!label.empty())
        labels_.emplace_back(id, std::move(label));
    return id;
}

double
ScheduleSimulator::run()
{
    PB_ASSERT(!ran_, "simulator is single-shot; reset() to reuse");
    ran_ = true;

    size_t taskCount = resource_.size();

    // Dependents in CSR form, per-parent in edge insertion order — the
    // iteration order the completion loop below relies on.
    depStart_.assign(taskCount + 1, 0);
    for (const auto &[parent, child] : edges_) {
        (void)child;
        ++depStart_[static_cast<size_t>(parent) + 1];
    }
    for (size_t i = 1; i <= taskCount; ++i)
        depStart_[i] += depStart_[i - 1];
    depList_.resize(edges_.size());
    {
        // Reuse the prefix array as fill cursors, restoring afterwards.
        std::vector<int32_t> &cursor = depStart_;
        for (const auto &[parent, child] : edges_)
            depList_[static_cast<size_t>(
                cursor[static_cast<size_t>(parent)]++)] = child;
        for (size_t i = taskCount; i > 0; --i)
            cursor[i] = cursor[i - 1];
        cursor[0] = 0;
    }

    // FIFO ready queues per physical resource (vector + head cursor; the
    // vectors only grow within a run and are reused across runs). On
    // machines whose OpenCL device is the host CPU, GPU-queue tasks are
    // routed to the CPU queue as full-pool tasks (the vectorized kernel
    // occupies every core).
    cpuReady_.clear();
    gpuReady_.clear();
    xferReady_.clear();
    size_t cpuHead = 0, gpuHead = 0, xferHead = 0;

    int cpuInUse = 0;
    bool gpuBusy = false;
    bool xferBusy = false;

    // (finishTime, sequence, task) min-heap of running tasks. The key is
    // a total order (sequence is unique), so pop order — and therefore
    // every result — is independent of heap layout.
    heap_.clear();
    auto heapGreater = [](const Running &a, const Running &b) {
        return a > b;
    };
    uint64_t seq = 0;
    double now = 0.0;
    double makespan = 0.0;
    size_t completed = 0;

    // True when @p id must hold the entire CPU pool while running.
    auto needsFullPool = [&](SimTaskId id) {
        SimResource r = resource_[static_cast<size_t>(id)];
        return r == SimResource::CpuPool ||
               (oclSharesCpu_ && r == SimResource::GpuQueue);
    };

    auto release = [&](SimTaskId id) {
        switch (resource_[static_cast<size_t>(id)]) {
          case SimResource::CpuWorker:
          case SimResource::CpuPool:
            cpuReady_.push_back(id);
            break;
          case SimResource::GpuQueue:
            if (oclSharesCpu_)
                cpuReady_.push_back(id);
            else
                gpuReady_.push_back(id);
            break;
          case SimResource::Transfer:
            xferReady_.push_back(id);
            break;
          case SimResource::None:
            // Completes instantly; handled by the caller via the heap
            // with zero duration so ordering stays uniform.
            heap_.push_back(
                {now, (seq++ << 32) | static_cast<uint32_t>(id)});
            std::push_heap(heap_.begin(), heap_.end(), heapGreater);
            break;
        }
    };

    auto start = [&](SimTaskId id) {
        double dur = seconds_[static_cast<size_t>(id)];
        heap_.push_back(
            {now + dur, (seq++ << 32) | static_cast<uint32_t>(id)});
        std::push_heap(heap_.begin(), heap_.end(), heapGreater);
        if (resource_[static_cast<size_t>(id)] == SimResource::GpuQueue)
            gpuBusy_ += dur;
        if (needsFullPool(id))
            cpuBusy_ += dur * cpuWorkers_;
        else if (resource_[static_cast<size_t>(id)] ==
                 SimResource::CpuWorker)
            cpuBusy_ += dur;
    };

    auto dispatch = [&]() {
        // CPU queue: strict FIFO so full-pool tasks cannot be starved by
        // a stream of single-worker tasks behind them.
        while (cpuHead < cpuReady_.size()) {
            SimTaskId head = cpuReady_[cpuHead];
            if (needsFullPool(head)) {
                bool gpuSide = resource_[static_cast<size_t>(head)] ==
                               SimResource::GpuQueue;
                if (cpuInUse != 0 || (gpuSide && gpuBusy))
                    break;
                cpuInUse = cpuWorkers_;
                if (gpuSide)
                    gpuBusy = true;
            } else {
                if (cpuInUse >= cpuWorkers_)
                    break;
                ++cpuInUse;
            }
            ++cpuHead;
            start(head);
        }
        if (!gpuBusy && gpuHead < gpuReady_.size()) {
            SimTaskId head = gpuReady_[gpuHead++];
            gpuBusy = true;
            start(head);
        }
        if (!xferBusy && xferHead < xferReady_.size()) {
            SimTaskId head = xferReady_[xferHead++];
            xferBusy = true;
            start(head);
        }
    };

    // Release all tasks with no dependencies, in id order.
    for (SimTaskId id = 0; id < static_cast<SimTaskId>(taskCount); ++id)
        if (remainingDeps_[static_cast<size_t>(id)] == 0)
            release(id);
    dispatch();

    while (!heap_.empty()) {
        double finish = heap_.front().finish;
        SimTaskId id =
            static_cast<SimTaskId>(heap_.front().seqId & 0xffffffffu);
        std::pop_heap(heap_.begin(), heap_.end(), heapGreater);
        heap_.pop_back();
        now = finish;
        makespan = std::max(makespan, now);
        finish_[static_cast<size_t>(id)] = now;
        ++completed;

        switch (resource_[static_cast<size_t>(id)]) {
          case SimResource::CpuWorker:
            --cpuInUse;
            break;
          case SimResource::CpuPool:
            cpuInUse = 0;
            break;
          case SimResource::GpuQueue:
            gpuBusy = false;
            if (oclSharesCpu_)
                cpuInUse = 0;
            break;
          case SimResource::Transfer:
            xferBusy = false;
            break;
          case SimResource::None:
            break;
        }

        int32_t depBegin = depStart_[static_cast<size_t>(id)];
        int32_t depEnd = depStart_[static_cast<size_t>(id) + 1];
        for (int32_t e = depBegin; e < depEnd; ++e) {
            SimTaskId dep = depList_[static_cast<size_t>(e)];
            if (--remainingDeps_[static_cast<size_t>(dep)] == 0)
                release(dep);
        }
        dispatch();
    }

    if (completed != taskCount)
        PB_PANIC("schedule deadlocked: " << completed << "/"
                 << taskCount << " tasks completed (cycle in DAG?)");
    return makespan;
}

const std::string &
ScheduleSimulator::taskLabel(SimTaskId task) const
{
    static const std::string kEmpty;
    for (const auto &[id, label] : labels_)
        if (id == task)
            return label;
    return kEmpty;
}

double
ScheduleSimulator::finishTime(SimTaskId task) const
{
    PB_ASSERT(ran_, "run() must be called first");
    PB_ASSERT(task >= 0 &&
                  task < static_cast<SimTaskId>(resource_.size()),
              "task id out of range");
    return finish_[static_cast<size_t>(task)];
}

} // namespace sim
} // namespace petabricks
