#include "sim/sched_sim.h"

#include <deque>
#include <queue>
#include <tuple>

#include "support/error.h"

namespace petabricks {
namespace sim {

ScheduleSimulator::ScheduleSimulator(int cpuWorkers, bool oclSharesCpu)
    : cpuWorkers_(cpuWorkers), oclSharesCpu_(oclSharesCpu)
{
    PB_ASSERT(cpuWorkers > 0, "need at least one CPU worker");
}

ScheduleSimulator::ScheduleSimulator(const MachineProfile &machine)
    : ScheduleSimulator(machine.workerThreads, machine.oclSharesCpu)
{
}

SimTaskId
ScheduleSimulator::addTask(SimResource resource, double seconds,
                           const std::vector<SimTaskId> &deps,
                           std::string label)
{
    PB_ASSERT(!ran_, "cannot add tasks after run()");
    PB_ASSERT(seconds >= 0.0, "negative task duration");
    SimTaskId id = static_cast<SimTaskId>(tasks_.size());
    TaskRecord rec;
    rec.resource = resource;
    rec.seconds = seconds;
    rec.remainingDeps = 0;
    rec.label = std::move(label);
    for (SimTaskId dep : deps) {
        PB_ASSERT(dep >= 0 && dep < id, "dependency " << dep
                                                      << " out of range");
        tasks_[dep].dependents.push_back(id);
        ++rec.remainingDeps;
    }
    tasks_.push_back(std::move(rec));
    return id;
}

double
ScheduleSimulator::run()
{
    PB_ASSERT(!ran_, "simulator is single-shot");
    ran_ = true;

    // FIFO ready queues per physical resource. On machines whose OpenCL
    // device is the host CPU, GPU-queue tasks are routed to the CPU queue
    // as full-pool tasks (the vectorized kernel occupies every core).
    std::deque<SimTaskId> cpuReady;
    std::deque<SimTaskId> gpuReady;
    std::deque<SimTaskId> xferReady;

    int cpuInUse = 0;
    bool gpuBusy = false;
    bool xferBusy = false;

    // (finishTime, sequence, task) min-heap of running tasks.
    using Running = std::tuple<double, int64_t, SimTaskId>;
    std::priority_queue<Running, std::vector<Running>, std::greater<>> heap;
    int64_t seq = 0;
    double now = 0.0;
    double makespan = 0.0;
    size_t completed = 0;

    // True when @p id must hold the entire CPU pool while running.
    auto needsFullPool = [&](SimTaskId id) {
        SimResource r = tasks_[id].resource;
        return r == SimResource::CpuPool ||
               (oclSharesCpu_ && r == SimResource::GpuQueue);
    };

    auto release = [&](SimTaskId id) {
        switch (tasks_[id].resource) {
          case SimResource::CpuWorker:
          case SimResource::CpuPool:
            cpuReady.push_back(id);
            break;
          case SimResource::GpuQueue:
            if (oclSharesCpu_)
                cpuReady.push_back(id);
            else
                gpuReady.push_back(id);
            break;
          case SimResource::Transfer:
            xferReady.push_back(id);
            break;
          case SimResource::None:
            // Completes instantly; handled by the caller via the heap
            // with zero duration so ordering stays uniform.
            heap.emplace(now, seq++, id);
            break;
        }
    };

    auto start = [&](SimTaskId id) {
        TaskRecord &rec = tasks_[id];
        double dur = rec.seconds;
        heap.emplace(now + dur, seq++, id);
        if (rec.resource == SimResource::GpuQueue)
            gpuBusy_ += dur;
        if (needsFullPool(id))
            cpuBusy_ += dur * cpuWorkers_;
        else if (rec.resource == SimResource::CpuWorker)
            cpuBusy_ += dur;
    };

    auto dispatch = [&]() {
        // CPU queue: strict FIFO so full-pool tasks cannot be starved by
        // a stream of single-worker tasks behind them.
        while (!cpuReady.empty()) {
            SimTaskId head = cpuReady.front();
            if (needsFullPool(head)) {
                bool gpuSide = tasks_[head].resource == SimResource::GpuQueue;
                if (cpuInUse != 0 || (gpuSide && gpuBusy))
                    break;
                cpuInUse = cpuWorkers_;
                if (gpuSide)
                    gpuBusy = true;
            } else {
                if (cpuInUse >= cpuWorkers_)
                    break;
                ++cpuInUse;
            }
            cpuReady.pop_front();
            start(head);
        }
        if (!gpuBusy && !gpuReady.empty()) {
            SimTaskId head = gpuReady.front();
            gpuReady.pop_front();
            gpuBusy = true;
            start(head);
        }
        if (!xferBusy && !xferReady.empty()) {
            SimTaskId head = xferReady.front();
            xferReady.pop_front();
            xferBusy = true;
            start(head);
        }
    };

    // Release all tasks with no dependencies, in id order.
    for (SimTaskId id = 0; id < static_cast<SimTaskId>(tasks_.size()); ++id)
        if (tasks_[id].remainingDeps == 0)
            release(id);
    dispatch();

    while (!heap.empty()) {
        auto [finish, order, id] = heap.top();
        heap.pop();
        (void)order;
        now = finish;
        makespan = std::max(makespan, now);
        TaskRecord &rec = tasks_[id];
        rec.finish = now;
        ++completed;

        switch (rec.resource) {
          case SimResource::CpuWorker:
            --cpuInUse;
            break;
          case SimResource::CpuPool:
            cpuInUse = 0;
            break;
          case SimResource::GpuQueue:
            gpuBusy = false;
            if (oclSharesCpu_)
                cpuInUse = 0;
            break;
          case SimResource::Transfer:
            xferBusy = false;
            break;
          case SimResource::None:
            break;
        }

        for (SimTaskId dep : rec.dependents) {
            if (--tasks_[dep].remainingDeps == 0)
                release(dep);
        }
        dispatch();
    }

    if (completed != tasks_.size())
        PB_PANIC("schedule deadlocked: " << completed << "/"
                 << tasks_.size() << " tasks completed (cycle in DAG?)");
    return makespan;
}

double
ScheduleSimulator::finishTime(SimTaskId task) const
{
    PB_ASSERT(ran_, "run() must be called first");
    PB_ASSERT(task >= 0 && task < static_cast<SimTaskId>(tasks_.size()),
              "task id out of range");
    return tasks_[task].finish;
}

} // namespace sim
} // namespace petabricks
