#include "sim/machine.h"

#include "support/error.h"
#include "support/hash.h"

namespace petabricks {
namespace sim {

namespace {

/** Hash one named field; the name tag keeps equal values in different
 * fields from canceling when the tagged hashes are XOR-combined. */
template <typename T>
uint64_t
taggedField(const char *tag, const T &value)
{
    return Fnv1a().mix(std::string(tag)).mix(value).value();
}

uint64_t
deviceFingerprint(const char *tag, const DeviceSpec &device)
{
    uint64_t hash = 0;
    hash ^= taggedField("name", device.name);
    hash ^= taggedField("type",
                        static_cast<uint64_t>(device.type));
    hash ^= taggedField("cores", static_cast<uint64_t>(device.cores));
    hash ^= taggedField("gflopsPerCore", device.gflopsPerCore);
    hash ^= taggedField("memBandwidthGBs", device.memBandwidthGBs);
    hash ^= taggedField("localMemBandwidthGBs",
                        device.localMemBandwidthGBs);
    hash ^= taggedField("dedicatedLocalMem", device.dedicatedLocalMem);
    hash ^= taggedField("launchLatencyUs", device.launchLatencyUs);
    hash ^= taggedField("simdWidth",
                        static_cast<uint64_t>(device.simdWidth));
    return taggedField(tag, hash);
}

} // namespace

uint64_t
MachineProfile::fingerprint() const
{
    uint64_t hash = 0;
    hash ^= taggedField("name", name);
    hash ^= taggedField("os", os);
    hash ^= taggedField("openclRuntime", openclRuntime);
    hash ^= deviceFingerprint("cpu", cpu);
    hash ^= taggedField("hasOpenCL", hasOpenCL);
    if (hasOpenCL) {
        hash ^= deviceFingerprint("ocl", ocl);
        hash ^= taggedField("transfer.latencyUs", transfer.latencyUs);
        hash ^= taggedField("transfer.bandwidthGBs",
                            transfer.bandwidthGBs);
        hash ^= taggedField("oclSharesCpu", oclSharesCpu);
    }
    hash ^= taggedField("workerThreads",
                        static_cast<uint64_t>(workerThreads));
    hash ^= taggedField("blasSpeedup", blasSpeedup);
    hash ^= taggedField("blasThreads",
                        static_cast<uint64_t>(blasThreads));
    hash ^= taggedField("kernelCompileSeconds", kernelCompileSeconds);
    hash ^= taggedField("irCacheSavings", irCacheSavings);
    // Re-seed through FNV so the combined value is well-mixed even
    // though the combination above is a plain XOR.
    return Fnv1a().mix(hash).value();
}

const char *
deviceTypeName(DeviceType type)
{
    switch (type) {
      case DeviceType::Cpu: return "CPU";
      case DeviceType::Gpu: return "GPU";
      case DeviceType::CpuOpenCL: return "CPU-OpenCL";
    }
    return "?";
}

MachineProfile
MachineProfile::desktop()
{
    MachineProfile m;
    m.name = "Desktop";
    m.os = "Debian 5.0 GNU/Linux";
    m.openclRuntime = "CUDA Toolkit 4.2 (GPU)";

    m.cpu.name = "Core i7 920 @2.67GHz";
    m.cpu.type = DeviceType::Cpu;
    m.cpu.cores = 4;
    m.cpu.gflopsPerCore = 5.0;
    m.cpu.memBandwidthGBs = 25.0;
    m.cpu.dedicatedLocalMem = false;
    m.cpu.launchLatencyUs = 2.0;
    m.cpu.simdWidth = 1;

    m.hasOpenCL = true;
    m.ocl.name = "NVIDIA Tesla C2070";
    m.ocl.type = DeviceType::Gpu;
    m.ocl.cores = 448;
    m.ocl.gflopsPerCore = 1.15; // double precision: ~515 GFLOP/s
    m.ocl.memBandwidthGBs = 144.0;
    m.ocl.localMemBandwidthGBs = 1300.0;
    m.ocl.dedicatedLocalMem = true;
    m.ocl.launchLatencyUs = 12.0;
    m.ocl.simdWidth = 32;

    m.transfer.latencyUs = 18.0;
    m.transfer.bandwidthGBs = 6.0;
    m.oclSharesCpu = false;
    m.workerThreads = 4;
    m.blasSpeedup = 3.0; // Debian reference netlib: single-threaded
    m.blasThreads = 1;
    m.kernelCompileSeconds = 1.6;
    m.irCacheSavings = 0.55;
    return m;
}

MachineProfile
MachineProfile::server()
{
    MachineProfile m;
    m.name = "Server";
    m.os = "Debian 5.0 GNU/Linux";
    m.openclRuntime = "AMD APP SDK 2.5 (CPU/SSE)";

    m.cpu.name = "4x Xeon X7550 @2GHz";
    m.cpu.type = DeviceType::Cpu;
    m.cpu.cores = 32;
    m.cpu.gflopsPerCore = 3.6;
    m.cpu.memBandwidthGBs = 70.0;
    m.cpu.dedicatedLocalMem = false;
    m.cpu.launchLatencyUs = 3.0;
    m.cpu.simdWidth = 1;

    // The AMD APP runtime vectorizes kernels onto the same 32 cores:
    // higher per-core throughput than scalar native code, no transfer
    // cost, but "local memory" is just main memory (prefetch is wasted
    // work) and kernel scheduling overhead is comparatively high.
    m.hasOpenCL = true;
    m.ocl.name = "AMD APP on 4x Xeon X7550";
    m.ocl.type = DeviceType::CpuOpenCL;
    m.ocl.cores = 32;
    m.ocl.gflopsPerCore = 9.5;
    m.ocl.memBandwidthGBs = 70.0;
    m.ocl.localMemBandwidthGBs = 70.0;
    m.ocl.dedicatedLocalMem = false;
    m.ocl.launchLatencyUs = 150.0; // CPU runtime dispatch is heavyweight
    m.ocl.simdWidth = 4;

    m.transfer.latencyUs = 0.0;
    m.transfer.bandwidthGBs = 0.0; // shared memory: copies are free
    m.oclSharesCpu = true;
    m.workerThreads = 16;
    m.blasSpeedup = 3.0; // Debian reference netlib: single-threaded
    m.blasThreads = 1;
    m.kernelCompileSeconds = 2.4;
    m.irCacheSavings = 0.6;
    return m;
}

MachineProfile
MachineProfile::laptop()
{
    MachineProfile m;
    m.name = "Laptop";
    m.os = "Mac OS X Lion (10.7.2)";
    m.openclRuntime = "Xcode 4.2 (GPU)";

    m.cpu.name = "Core i5 2520M @2.5GHz";
    m.cpu.type = DeviceType::Cpu;
    m.cpu.cores = 2;
    m.cpu.gflopsPerCore = 6.0;
    m.cpu.memBandwidthGBs = 17.0;
    m.cpu.dedicatedLocalMem = false;
    m.cpu.launchLatencyUs = 2.0;
    m.cpu.simdWidth = 1;

    m.hasOpenCL = true;
    m.ocl.name = "AMD Radeon HD 6630M";
    m.ocl.type = DeviceType::Gpu;
    m.ocl.cores = 96;
    m.ocl.gflopsPerCore = 0.25; // mobile GPU double precision is weak
    m.ocl.memBandwidthGBs = 25.6;
    m.ocl.localMemBandwidthGBs = 220.0;
    m.ocl.dedicatedLocalMem = true;
    m.ocl.launchLatencyUs = 30.0;
    m.ocl.simdWidth = 32;

    m.transfer.latencyUs = 25.0;
    m.transfer.bandwidthGBs = 2.5;
    m.oclSharesCpu = false;
    m.workerThreads = 2;
    m.blasSpeedup = 8.0; // Accelerate framework: vectorized...
    m.blasThreads = 2;   // ...and multithreaded
    m.kernelCompileSeconds = 1.2;
    m.irCacheSavings = 0.5;
    return m;
}

MachineProfile
MachineProfile::ultrabook()
{
    MachineProfile m;
    m.name = "Ultrabook";
    m.os = "Windows 8";
    m.openclRuntime = "Intel OpenCL SDK 2013 (iGPU)";

    m.cpu.name = "Core i5 3317U @1.7GHz";
    m.cpu.type = DeviceType::Cpu;
    m.cpu.cores = 2;
    m.cpu.gflopsPerCore = 3.5;
    m.cpu.memBandwidthGBs = 12.8;
    m.cpu.dedicatedLocalMem = false;
    m.cpu.launchLatencyUs = 2.0;
    m.cpu.simdWidth = 1;

    // Integrated GPU on the same die: shares the memory controller,
    // so buffer "transfers" are zero-copy remaps — free like Server's
    // CPU runtime — but unlike Server the device has its own EUs and
    // does not contend with the native worker threads.
    m.hasOpenCL = true;
    m.ocl.name = "Intel HD Graphics 4000";
    m.ocl.type = DeviceType::Gpu;
    m.ocl.cores = 16;
    m.ocl.gflopsPerCore = 1.0; // double precision: ~16 GFLOP/s
    m.ocl.memBandwidthGBs = 12.8; // same DDR3 as the host
    m.ocl.localMemBandwidthGBs = 64.0;
    m.ocl.dedicatedLocalMem = true;
    m.ocl.launchLatencyUs = 20.0;
    m.ocl.simdWidth = 8;

    m.transfer.latencyUs = 0.0;
    m.transfer.bandwidthGBs = 0.0; // shared memory: zero-copy
    m.oclSharesCpu = false;
    m.workerThreads = 2;
    m.blasSpeedup = 3.0;
    m.blasThreads = 1;
    m.kernelCompileSeconds = 1.4;
    m.irCacheSavings = 0.5;
    return m;
}

MachineProfile
MachineProfile::bigLittle()
{
    MachineProfile m;
    m.name = "BigLittle";
    m.os = "Android 4.2 GNU/Linux";
    m.openclRuntime = "none";

    // 4 big + 4 little cores. The scheduler model is homogeneous, so
    // the per-core throughput is the blended average of the two
    // clusters; what matters for portability is that this machine has
    // many weak cores and no OpenCL device at all.
    m.cpu.name = "Exynos 5410 4xA15+4xA7 @1.6GHz";
    m.cpu.type = DeviceType::Cpu;
    m.cpu.cores = 8;
    m.cpu.gflopsPerCore = 1.8;
    m.cpu.memBandwidthGBs = 12.8;
    m.cpu.dedicatedLocalMem = false;
    m.cpu.launchLatencyUs = 4.0;
    m.cpu.simdWidth = 1;

    m.hasOpenCL = false;

    m.workerThreads = 8;
    m.blasSpeedup = 2.0; // netlib cross-compiled for ARM: scalar
    m.blasThreads = 1;
    m.kernelCompileSeconds = 1.0;
    m.irCacheSavings = 0.6;
    return m;
}

std::vector<MachineProfile>
MachineProfile::all()
{
    return {desktop(), server(), laptop(), ultrabook(), bigLittle()};
}

MachineProfile
MachineProfile::byName(const std::string &name)
{
    std::string known;
    for (auto &m : all()) {
        if (m.name == name)
            return m;
        known += known.empty() ? "" : ", ";
        known += m.name;
    }
    PB_FATAL("unknown machine profile '" << name << "' (known profiles: "
                                         << known << ")");
}

} // namespace sim
} // namespace petabricks
