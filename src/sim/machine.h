/**
 * @file
 * The representative test systems (Figure 9, plus portability extras).
 *
 * The paper's three:
 *
 * Desktop: Core i7 920 (4 cores) + NVIDIA Tesla C2070, CUDA OpenCL.
 * Server:  4x Xeon X7550 (32 cores), no GPU; AMD APP CPU OpenCL runtime
 *          that generates optimized SSE code.
 * Laptop:  Core i5 2520M (2 cores) + AMD Radeon HD 6630M.
 *
 * Two more exercise the portability claim from a different direction
 * (the champion-portfolio matrix in bench/fig9_portability):
 *
 * Ultrabook: weak dual-core CPU + integrated GPU on shared memory —
 *            transfers are free but the GPU is modest, so the best
 *            placement flips per benchmark and per size.
 * BigLittle: asymmetric 8-core mobile CPU with no OpenCL runtime at
 *            all — every GPU-placed choice is infeasible, the extreme
 *            end of the portability spectrum.
 */

#ifndef PETABRICKS_SIM_MACHINE_H
#define PETABRICKS_SIM_MACHINE_H

#include <string>
#include <vector>

#include "sim/device_spec.h"

namespace petabricks {
namespace sim {

/**
 * A heterogeneous machine: host CPU plus (optionally) an OpenCL device,
 * with the interconnect between them.
 */
struct MachineProfile
{
    std::string name;
    std::string os;
    std::string openclRuntime;

    /** Host processor running native PetaBricks code. */
    DeviceSpec cpu;

    /** True if an OpenCL backend exists on this machine. */
    bool hasOpenCL = false;

    /** The OpenCL device (GPU, or vectorizing CPU runtime). */
    DeviceSpec ocl;

    /** Host <-> OpenCL-device interconnect. */
    TransferModel transfer;

    /**
     * True when the OpenCL device is the host CPU itself (Server): OpenCL
     * kernels then contend with native worker threads for the same cores.
     */
    bool oclSharesCpu = false;

    /**
     * Worker thread count used in the experiments. The paper pins threads
     * to core count, except Server where 16 performs best (Section 6.1).
     */
    int workerThreads = 1;

    /**
     * The machine's BLAS-style external library ("LAPACK" in the
     * paper): effective flop-throughput multiple over scalar native
     * code, and how many threads the library itself uses. Debian's
     * reference netlib build is single-threaded and barely vectorized;
     * Mac OS X's Accelerate framework is vectorized and multithreaded —
     * which is exactly why the paper's Laptop prefers a direct library
     * call while the Server decomposes first.
     */
    double blasSpeedup = 3.0;
    int blasThreads = 1;

    /** Mean seconds to JIT one OpenCL kernel (drives Figure 8 times). */
    double kernelCompileSeconds = 1.0;

    /** Fraction of kernel compile time skipped on an IR-cache hit. */
    double irCacheSavings = 0.6;

    /**
     * Stable content hash of every parameter above. Two profiles
     * fingerprint equal exactly when they describe the same machine,
     * whatever order their fields were assigned in (each field is
     * hashed tagged with its name and the tagged hashes are combined
     * commutatively). This is the machine component of the shared
     * evaluation cache's scope key, so it must be stable across
     * processes and platforms.
     */
    uint64_t fingerprint() const;

    /** The paper's Desktop system. */
    static MachineProfile desktop();
    /** The paper's Server system. */
    static MachineProfile server();
    /** The paper's Laptop system (a Mac Mini). */
    static MachineProfile laptop();
    /** iGPU-only ultrabook: weak CPU + integrated GPU, zero-copy. */
    static MachineProfile ultrabook();
    /** Asymmetric big/little mobile CPU, no OpenCL runtime. */
    static MachineProfile bigLittle();

    /** All registered test systems in presentation order. */
    static std::vector<MachineProfile> all();

    /**
     * Lookup by code name ("Desktop", "Server", ...). Unknown names
     * raise a FatalError listing every registered profile name.
     */
    static MachineProfile byName(const std::string &name);
};

} // namespace sim
} // namespace petabricks

#endif // PETABRICKS_SIM_MACHINE_H
