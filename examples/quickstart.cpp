/**
 * Quickstart: define a transform with two algorithmic choices, run it
 * on the heterogeneous runtime under different placements, and let the
 * autotuner pick a configuration for a machine profile.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/convolution.h"
#include "compiler/executor.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    // SeparableConvolution, the paper's running example: choice of a
    // single-pass 2-D convolution or two 1-D passes, each mappable to
    // the CPU backend or the (emulated) OpenCL backend.
    const int64_t n = 64, kwidth = 5;
    ConvolutionBenchmark bench(kwidth);
    Rng rng(42);

    // --- Real mode: execute on the work-stealing runtime + GPU ------
    ocl::Device gpu(sim::MachineProfile::desktop().ocl);
    runtime::Runtime rt(4, &gpu);
    compiler::TransformExecutor exec(rt);

    lang::Binding binding = bench.makeBinding(n, rng);
    tuner::Config config =
        ConvolutionBenchmark::fixedMapping(/*separable=*/true,
                                           /*localMem=*/true);
    exec.execute(bench.transform(), binding, bench.planFor(config, n));
    exec.syncOutputs(bench.transform(), binding); // lazy copy-out check

    MatrixD ref = ConvolutionBenchmark::reference(binding, kwidth);
    double err = 0.0;
    const MatrixD &out = binding.matrix("Out");
    for (int64_t i = 0; i < out.size(); ++i)
        err = std::max(err, std::abs(out[i] - ref[i]));
    std::cout << "separable+local-memory on the emulated GPU: max error "
              << err << "\n";

    // --- Model mode: what would each mapping cost on each machine? --
    for (const auto &machine : sim::MachineProfile::all()) {
        std::cout << machine.name << ":";
        for (bool separable : {false, true}) {
            double t = bench.evaluate(
                ConvolutionBenchmark::fixedMapping(separable, false),
                3520, machine);
            std::cout << (separable ? "  separable=" : "  2d=")
                      << t * 1e3 << "ms";
        }
        std::cout << "\n";
    }

    // --- Autotune for the Desktop profile ----------------------------
    tuner::TuningResult tuned =
        tuneOnMachine(bench, sim::MachineProfile::desktop());
    std::cout << "Desktop autotuned config: "
              << bench.describeConfig(tuned.best, 3520) << "\n"
              << "modeled time " << tuned.bestSeconds * 1e3
              << " ms after " << tuned.evaluations << " evaluations\n";
    return 0;
}
