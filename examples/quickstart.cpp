/**
 * Quickstart: evaluate one benchmark configuration through the unified
 * ExecutionEngine API — the same call priced on a machine profile
 * (ModelEngine) and really executed on the heterogeneous runtime with
 * the emulated OpenCL device (RuntimeEngine) — then autotune against
 * either engine with a one-line swap.
 *
 * Build & run:  ./build/quickstart
 */

#include <iostream>

#include "benchmarks/convolution.h"
#include "engine/execution_engine.h"
#include "tuner/session.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    // SeparableConvolution, the paper's running example: choice of a
    // single-pass 2-D convolution or two 1-D passes, each mappable to
    // the CPU backend or the (emulated) OpenCL backend.
    ConvolutionBenchmark bench(5);
    tuner::Config config =
        ConvolutionBenchmark::fixedMapping(/*separable=*/true,
                                           /*localMem=*/true);

    // --- Real mode: execute on the work-stealing runtime + GPU ------
    engine::RuntimeEngine real;
    engine::RunResult run = real.run(bench, config, 64);
    std::cout << "separable+local-memory on the emulated GPU: "
              << run.kernelCount << " kernels, max error "
              << run.maxError << "\n";

    // --- Model mode: what would each mapping cost on each machine? --
    // A placement can be infeasible on a profile (the fixed mapping
    // uses the GPU, and BigLittle has no OpenCL device): run() throws
    // FatalError for those, so price them as "n/a" like the tuner does.
    for (const auto &machine : sim::MachineProfile::all()) {
        engine::ModelEngine model(machine);
        std::cout << machine.name << ":";
        for (bool separable : {false, true}) {
            std::cout << (separable ? "  separable=" : "  2d=");
            try {
                engine::RunResult r = model.run(
                    bench,
                    ConvolutionBenchmark::fixedMapping(separable, false),
                    3520);
                std::cout << r.seconds * 1e3 << "ms";
            } catch (const FatalError &) {
                std::cout << "n/a";
            }
        }
        std::cout << "\n";
    }

    // --- Autotune for the Desktop profile ----------------------------
    // TuningSession is the session-oriented search API: every tuner
    // generation is evaluated as ONE batch (ModelEngine prices it in
    // parallel on a thread pool), duplicate candidates come from the
    // evaluation cache, and the whole search can be checkpointed with
    // save()/load() (see examples/resumable_tuning.cpp).
    engine::ModelEngine desktop(sim::MachineProfile::desktop());
    engine::EngineEvaluator evaluator(bench, desktop);
    tuner::TunerOptions options;
    options.minInputSize = bench.minTuningSize();
    options.maxInputSize = bench.testingInputSize();
    desktop.configureTuner(options);
    tuner::TuningSession sessionTuner(evaluator, bench.seedConfig(),
                                      options);
    sessionTuner.onProgress([](const tuner::SessionProgress &p) {
        if (p.completedSteps == p.totalSteps)
            std::cout << "  search done: " << p.evaluations
                      << " evaluations, " << p.cacheHits
                      << " cache hits\n";
    });
    tuner::TuningResult tuned = sessionTuner.run();
    std::cout << "Desktop autotuned config: "
              << bench.describeConfig(tuned.best, 3520) << "\n"
              << "modeled time " << tuned.bestSeconds * 1e3
              << " ms after " << tuned.evaluations << " evaluations\n";

    // --- The same search against real execution ----------------------
    // tuneWithEngine() is the engine swap: candidates are now timed by
    // actually running them (kept tiny here — real runs are slower).
    tuner::TunerOptions small;
    small.populationSize = 3;
    small.generationsPerSize = 2;
    small.minInputSize = 48;
    small.maxInputSize = 96;
    tuner::TuningResult realTuned = tuneWithEngine(bench, real, small);
    std::cout << "real-execution tuned config: "
              << bench.describeConfig(realTuned.best, 96) << "\n"
              << "measured " << realTuned.bestSeconds * 1e3
              << " ms per run\n";
    return 0;
}
