/**
 * Option pricing: price a portfolio of European calls with the
 * Black-Scholes transform, splitting the work between the CPU workers
 * and the (emulated) GPU with the paper's ratio mechanism — executed
 * through the RuntimeEngine.
 *
 * Build & run:  ./build/option_pricing
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/blackscholes.h"
#include "engine/execution_engine.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    const int64_t options = 40000;
    BlackScholesBenchmark bench;
    Rng rng(7);

    // The Laptop-style configuration: 75% of the portfolio priced on
    // the GPU, 25% concurrently on the CPU workers.
    tuner::Config config = bench.seedConfig();
    config.selector("BlackScholes.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::OpenClGlobal));
    config.tunable("BlackScholes.ratio").value = 6;

    engine::RuntimeEngineOptions engineOptions;
    engineOptions.machine = sim::MachineProfile::laptop();
    engine::RuntimeEngine engine(engineOptions);

    lang::Binding binding = bench.makeBinding(options, rng);
    engine::RunResult run =
        engine.runOnBinding(bench, config, options, binding);

    const MatrixD &price = binding.matrix("Price");
    double total = 0.0;
    for (int64_t i = 0; i < price.size(); ++i)
        total += price[i];
    std::cout << "priced " << options << " options, portfolio value "
              << total << ", max error vs reference " << run.maxError
              << "\n";

    auto stats = engine.runtime().gpuMemory().statsSnapshot();
    std::cout << "GPU memory table: " << stats.copyInsPerformed
              << " copy-ins, " << stats.lazyCopyOuts
              << " lazy copy-outs\n";
    std::cout << "GPU/CPU split: 75% / 25% (ratio 6/8, the paper's "
                 "Laptop-style configuration)\n";
    return 0;
}
