/**
 * Option pricing: price a portfolio of European calls with the
 * Black-Scholes transform, splitting the work between the CPU workers
 * and the (emulated) GPU with the paper's ratio mechanism.
 *
 * Build & run:  ./build/examples/option_pricing
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/blackscholes.h"
#include "compiler/executor.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    const int64_t options = 40000;
    BlackScholesBenchmark bench;
    Rng rng(7);

    ocl::Device gpu(sim::MachineProfile::laptop().ocl);
    runtime::Runtime rt(2, &gpu);
    compiler::TransformExecutor exec(rt);

    // The Laptop-style configuration: 75% of the portfolio priced on
    // the GPU, 25% concurrently on the CPU workers.
    tuner::Config config = bench.seedConfig();
    config.selector("BlackScholes.backend")
        .setAlgorithm(0, kBackendOpenCl);
    config.tunable("BlackScholes.ratio").value = 6;

    lang::Binding binding = bench.makeBinding(options, rng);
    exec.execute(bench.transform(), binding,
                 bench.planFor(config, options));
    exec.syncOutputs(bench.transform(), binding);

    const MatrixD &price = binding.matrix("Price");
    MatrixD ref = BlackScholesBenchmark::reference(binding);
    double total = 0.0, err = 0.0;
    for (int64_t i = 0; i < price.size(); ++i) {
        total += price[i];
        err = std::max(err, std::abs(price[i] - ref[i]));
    }
    std::cout << "priced " << options << " options, portfolio value "
              << total << ", max error vs reference " << err << "\n";

    auto stats = rt.gpuMemory().statsSnapshot();
    std::cout << "GPU memory table: " << stats.copyInsPerformed
              << " copy-ins, " << stats.lazyCopyOuts
              << " lazy copy-outs\n";
    std::cout << "GPU/CPU split: 75% / 25% (ratio 6/8, the paper's "
                 "Laptop-style configuration)\n";
    return 0;
}
