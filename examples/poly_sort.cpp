/**
 * Poly-algorithm sorting: build the paper's Desktop-style sort
 * configuration (2-way merge sort at the top, quicksort in the middle,
 * 4-way merge sort lower, insertion sort at the base) with selectors,
 * then sort with it and compare algorithm choices.
 *
 * Build & run:  ./build/examples/poly_sort
 */

#include <algorithm>
#include <iostream>

#include "benchmarks/sort.h"
#include "support/rng.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    SortBenchmark bench;

    // The paper's Desktop config: "above 174762 2MS (PM), then QS
    // until 64294, then 4MS until 341, then IS" (Figure 6).
    tuner::Config config = bench.seedConfig();
    tuner::Selector &s = config.selector("Sort.algorithm");
    s.setAlgorithm(0, kSortInsertion);
    s.insertLevel(341, kSortMerge4);
    s.insertLevel(64294, kSortQuick);
    s.insertLevel(174762, kSortMerge2);

    Rng rng(99);
    std::vector<double> data(500000);
    for (double &d : data)
        d = rng.uniformReal(-1e9, 1e9);
    std::vector<double> expect = data;
    std::sort(expect.begin(), expect.end());

    std::vector<double> work = data;
    SortBenchmark::sortWithConfig(config, work);
    std::cout << "poly-algorithm sort of " << data.size() << " doubles: "
              << (work == expect ? "correct" : "WRONG") << "\n";
    std::cout << "configuration: " << bench.describeConfig(
                     config, static_cast<int64_t>(data.size()))
              << "\n";

    // Compare modeled cost against single-algorithm configs per machine.
    for (const auto &machine : sim::MachineProfile::all()) {
        tuner::Config merge = bench.seedConfig();
        merge.selector("Sort.algorithm").setAlgorithm(0, kSortMerge2);
        double poly = bench.evaluate(config, 1 << 20, machine);
        double mono = bench.evaluate(merge, 1 << 20, machine);
        double gpu = bench.evaluate(SortBenchmark::gpuOnlyConfig(),
                                    1 << 20, machine);
        std::cout << machine.name << ": poly " << poly * 1e3
                  << " ms, pure 2MS " << mono * 1e3
                  << " ms, GPU bitonic " << gpu * 1e3 << " ms\n";
    }
    return 0;
}
