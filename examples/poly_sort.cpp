/**
 * Poly-algorithm sorting: build the paper's Desktop-style sort
 * configuration (2-way merge sort at the top, quicksort in the middle,
 * 4-way merge sort lower, insertion sort at the base) with selectors,
 * run it through the RuntimeEngine, and compare algorithm choices with
 * the ModelEngine.
 *
 * Build & run:  ./build/poly_sort
 */

#include <iostream>

#include "benchmarks/sort.h"
#include "engine/execution_engine.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    SortBenchmark bench;

    // The paper's Desktop config: "above 174762 2MS (PM), then QS
    // until 64294, then 4MS until 341, then IS" (Figure 6).
    tuner::Config config = bench.seedConfig();
    tuner::Selector &s = config.selector("Sort.algorithm");
    s.setAlgorithm(0, kSortInsertion);
    s.insertLevel(341, kSortMerge4);
    s.insertLevel(64294, kSortQuick);
    s.insertLevel(174762, kSortMerge2);

    const int64_t n = 500000;
    engine::RuntimeEngine real;
    engine::RunResult run = real.run(bench, config, n);
    std::cout << "poly-algorithm sort of " << n << " doubles: "
              << (run.maxError <= bench.realModeTolerance() ? "correct"
                                                            : "WRONG")
              << " (" << run.seconds * 1e3 << " ms measured)\n";
    std::cout << "configuration: " << bench.describeConfig(config, n)
              << "\n";

    // Compare modeled cost against single-algorithm configs per machine.
    for (const auto &machine : sim::MachineProfile::all()) {
        engine::ModelEngine model(machine);
        tuner::Config merge = bench.seedConfig();
        merge.selector("Sort.algorithm").setAlgorithm(0, kSortMerge2);
        double poly = model.run(bench, config, 1 << 20).seconds;
        double mono = model.run(bench, merge, 1 << 20).seconds;
        double gpu = model.run(bench, SortBenchmark::gpuOnlyConfig(),
                               1 << 20).seconds;
        std::cout << machine.name << ": poly " << poly * 1e3
                  << " ms, pure 2MS " << mono * 1e3
                  << " ms, GPU bitonic " << gpu * 1e3 << " ms\n";
    }
    return 0;
}
