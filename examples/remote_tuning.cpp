/**
 * Remote autotuning through the tunerd daemon.
 *
 * The client-side counterpart of tools/tunerd.cc: drives a hosted
 * tuning session over the HTTP command API via service::Client, and
 * can run the identical search in-process for champion comparison —
 * which is exactly what the daemon smoke test does around a SIGKILL.
 *
 * Modes (the default runs a full remote search and prints the champion):
 *   remote_tuning --port P run      --benchmark Sort [--seed N]
 *   remote_tuning --port P create   --benchmark Sort   # prints session id
 *   remote_tuning --port P step     --session s1 --steps 4 [--nowait]
 *   remote_tuning --port P finish   --session s1       # step to done + champion
 *   remote_tuning --port P resume   --session s1       # rehydrate after restart
 *   remote_tuning --port P status   --session s1
 *   remote_tuning --port P stats
 *   remote_tuning local             --benchmark Sort [--seed N]
 *
 * Portfolio modes (the champion store behind input-adaptive dispatch):
 *   remote_tuning --port P machines
 *   remote_tuning --port P portfolio
 *   remote_tuning --port P portfolio-tune     --benchmark B --machine M
 *                                             [--sizes 64,256,1024]
 *   remote_tuning --port P portfolio-champion --benchmark B --machine M --n N
 *
 * Champion output (run/finish/local/portfolio-champion) is KvFile
 * text, so two modes' outputs can be compared byte-for-byte.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "service/client.h"
#include "service/hosted_session.h"

using namespace petabricks;

namespace {

int
usage()
{
    std::cerr << "usage: remote_tuning [--host H] [--port P] "
                 "[--timeout MS] [--retries N] MODE [--benchmark B] "
                 "[--session ID] [--steps N] [--seed N] [--nowait] "
                 "[--machine M] [--sizes A,B,...] [--n N]\n"
                 "modes: run create step finish resume status stats "
                 "stop local machines portfolio portfolio-tune "
                 "portfolio-champion\n"
                 "--timeout bounds the connect and every response read; "
                 "expiry exits with a transient error\n"
                 "--retries retries a 503 (daemon backpressure) up to N "
                 "times, honoring its Retry-After hint\n";
    return 2;
}

/** Champion KvFile minus the transport-only keys, for byte compares. */
std::string
championText(const KvFile &kv)
{
    KvFile out;
    for (const std::string &key : kv.keys())
        if (key != "session" && key != "champion.description")
            out.set(key, kv.get(key));
    return out.toString();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    uint16_t port = 8617;
    std::string mode;
    std::string benchmark = "Sort";
    std::string session;
    int steps = 4;
    int timeoutMillis = 0;
    int retries = 0;
    bool nowait = false;
    std::string machine = "Desktop";
    int64_t n = 0;
    KvFile createOptions;
    KvFile tuneOptions;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "remote_tuning: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            host = value();
        else if (arg == "--port")
            port = static_cast<uint16_t>(std::atoi(value().c_str()));
        else if (arg == "--benchmark")
            benchmark = value();
        else if (arg == "--session")
            session = value();
        else if (arg == "--steps")
            steps = std::atoi(value().c_str());
        else if (arg == "--timeout")
            timeoutMillis = std::atoi(value().c_str());
        else if (arg == "--retries")
            retries = std::atoi(value().c_str());
        else if (arg == "--seed")
            createOptions.set("seed", value());
        else if (arg == "--population")
            createOptions.set("populationSize", value());
        else if (arg == "--generations")
            createOptions.set("generationsPerSize", value());
        else if (arg == "--max-input")
            createOptions.set("maxInputSize", value());
        else if (arg == "--machine")
            machine = value();
        else if (arg == "--n")
            n = std::atoll(value().c_str());
        else if (arg == "--sizes") {
            // Comma list -> the tune body's int-list field.
            std::vector<int64_t> sizes;
            std::string list = value();
            for (size_t pos = 0; pos < list.size();) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                sizes.push_back(
                    std::atoll(list.substr(pos, comma - pos).c_str()));
                pos = comma + 1;
            }
            tuneOptions.setIntList("sizes", sizes);
        }
        else if (arg == "--nowait")
            nowait = true;
        else if (arg == "--help" || arg == "-h")
            return usage();
        else if (mode.empty() && arg[0] != '-')
            mode = arg;
        else
            return usage();
    }
    if (mode.empty())
        mode = "run";
    createOptions.set("benchmark", benchmark);

    try {
        if (mode == "local") {
            // The reference: the identical search, no daemon involved.
            service::SessionSpec spec =
                service::SessionSpec::fromCreateRequest(createOptions);
            service::HostedSession hosted(spec);
            hosted.stepMany(hosted.introspect().totalSteps);
            std::cout << championText(hosted.championKv());
            return 0;
        }

        service::Client client(host, port, timeoutMillis);
        if (retries > 0) {
            service::ClientRetryPolicy policy;
            policy.attempts = retries;
            client.setRetryPolicy(policy);
        }
        if (mode == "run") {
            std::string id = client.create(createOptions);
            std::cerr << "session " << id << " created\n";
            std::cout << championText(client.runToCompletion(id, steps));
        } else if (mode == "create") {
            std::cout << client.create(createOptions) << "\n";
        } else if (mode == "step") {
            if (session.empty())
                return usage();
            int advanced = client.step(session, steps, !nowait);
            std::cerr << (nowait ? "enqueued " : "advanced ")
                      << (nowait ? steps : advanced) << " steps\n";
        } else if (mode == "finish") {
            if (session.empty())
                return usage();
            std::cout << championText(
                client.runToCompletion(session, steps));
        } else if (mode == "resume") {
            if (session.empty())
                return usage();
            client.resume(session);
            std::cerr << "session " << session << " resumed\n";
        } else if (mode == "status") {
            if (session.empty())
                return usage();
            std::cout << client.status(session).toString();
        } else if (mode == "stop") {
            if (session.empty())
                return usage();
            client.stopSession(session);
        } else if (mode == "stats") {
            std::cout << client.stats().toString();
        } else if (mode == "machines") {
            std::cout << client.machines().toString();
        } else if (mode == "portfolio") {
            std::cout << client.portfolio().toString();
        } else if (mode == "portfolio-tune") {
            tuneOptions.set("benchmark", benchmark);
            tuneOptions.set("machine", machine);
            if (createOptions.has("seed"))
                tuneOptions.set("seed", createOptions.get("seed"));
            if (createOptions.has("populationSize"))
                tuneOptions.set("population",
                                createOptions.get("populationSize"));
            if (createOptions.has("generationsPerSize"))
                tuneOptions.set("generations",
                                createOptions.get("generationsPerSize"));
            std::cout << client.portfolioTune(tuneOptions).toString();
        } else if (mode == "portfolio-champion") {
            if (n < 1)
                return usage();
            std::cout << client.portfolioChampion(benchmark, machine, n)
                             .toString();
        } else {
            return usage();
        }
    } catch (const std::exception &error) {
        std::cerr << "remote_tuning: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
