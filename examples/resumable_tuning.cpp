/**
 * Resumable autotuning with TuningSession.
 *
 * The paper's autotuner ran for hours per benchmark; a search that
 * long must survive being killed. This example runs half of a search,
 * checkpoints it to disk, throws the session away (the "crash"),
 * restores a fresh session from the checkpoint, and finishes — then
 * verifies the champion matches an uninterrupted run exactly.
 *
 * Build & run:  ./build/resumable_tuning
 */

#include <cstdio>
#include <iostream>

#include "benchmarks/sort.h"
#include "engine/execution_engine.h"
#include "tuner/session.h"

using namespace petabricks;

int
main()
{
    apps::SortBenchmark bench;
    engine::ModelEngine engine(sim::MachineProfile::desktop());

    tuner::TunerOptions options;
    options.minInputSize = bench.minTuningSize();
    options.maxInputSize = bench.testingInputSize();
    options.populationSize = 12;
    options.generationsPerSize = 12;
    engine.configureTuner(options);

    // Reference: the search nobody killed.
    engine::EngineEvaluator evaluator(bench, engine);
    tuner::TuningSession uninterrupted(evaluator, bench.seedConfig(),
                                       options);
    tuner::TuningResult reference = uninterrupted.run();

    // The same search, killed half-way through...
    const std::string checkpoint = "/tmp/resumable_tuning.ckpt";
    {
        tuner::TuningSession session(evaluator, bench.seedConfig(),
                                     options);
        int half = session.totalSteps() / 2;
        session.run(half); // budgeted: stops after `half` generations
        session.save(checkpoint);
        std::cout << "killed after " << session.completedSteps() << "/"
                  << session.totalSteps() << " generations (best so far "
                  << session.result().bestSeconds * 1e3 << " ms at n="
                  << session.currentInputSize() << ")\n";
    } // session destroyed: the tuning "process" is gone

    // ...and resumed in a brand-new session. load() restores the
    // population, scores, generation cursor, and RNG state, so the
    // remaining mutations replay exactly.
    tuner::TuningSession resumed(evaluator, bench.seedConfig(), options);
    resumed.load(checkpoint);
    std::cout << "resumed at " << resumed.completedSteps() << "/"
              << resumed.totalSteps() << " generations\n";
    tuner::TuningResult result = resumed.run();
    std::remove(checkpoint.c_str());

    std::cout << "resumed champion:       "
              << bench.describeConfig(result.best,
                                      bench.testingInputSize())
              << "\nuninterrupted champion: "
              << bench.describeConfig(reference.best,
                                      bench.testingInputSize())
              << "\n"
              << (result.best == reference.best
                      ? "identical champions: the checkpoint captured "
                        "the full search state\n"
                      : "MISMATCH (this is a bug)\n");
    return result.best == reference.best ? 0 : 1;
}
