/**
 * Heat/Laplace solver: red-black SOR via the Poisson2D transform, with
 * the split phase on the CPU and the iterations on the emulated GPU —
 * the paper's Desktop-style placement.
 *
 * Build & run:  ./build/examples/heat_solver
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/poisson.h"
#include "compiler/executor.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    const int64_t n = 64;
    const int iterations = 8;
    PoissonBenchmark bench(iterations);
    Rng rng(3);

    ocl::Device gpu(sim::MachineProfile::desktop().ocl);
    runtime::Runtime rt(4, &gpu);
    compiler::TransformExecutor exec(rt);

    tuner::Config config = bench.seedConfig();
    config.selector("Poisson.split.backend").setAlgorithm(0, kBackendCpu);
    config.selector("Poisson.iterate.backend")
        .setAlgorithm(0, kBackendOpenClLocal);

    lang::Binding binding = bench.makeBinding(n, rng);
    MatrixD initial = binding.matrix("In").clone();
    exec.execute(bench.transform(), binding, bench.planFor(config, n));
    exec.syncOutputs(bench.transform(), binding);

    MatrixD got = bench.unpackResult(binding);
    MatrixD ref =
        PoissonBenchmark::reference(initial, iterations,
                                    PoissonBenchmark::kOmega);
    double err = 0.0;
    for (int64_t i = 0; i < got.size(); ++i)
        err = std::max(err, std::abs(got[i] - ref[i]));

    // Residual decrease as a sanity check that SOR is converging.
    auto residual = [](const MatrixD &g) {
        double r = 0.0;
        for (int64_t y = 1; y < g.height() - 1; ++y)
            for (int64_t x = 1; x < g.width() - 1; ++x)
                r += std::abs(4 * g.at(x, y) - g.at(x - 1, y) -
                              g.at(x + 1, y) - g.at(x, y - 1) -
                              g.at(x, y + 1));
        return r;
    };
    std::cout << iterations << " red-black SOR iterations on a " << n
              << "x" << n << " grid\n"
              << "  split on CPU, iterate on GPU (local memory)\n"
              << "  max error vs direct SOR: " << err << "\n"
              << "  residual: " << residual(initial) << " -> "
              << residual(got) << "\n";
    return 0;
}
