/**
 * Heat/Laplace solver: red-black SOR via the Poisson2D transform, with
 * the split phase on the CPU and the iterations on the emulated GPU —
 * the paper's Desktop-style placement — executed through the
 * RuntimeEngine.
 *
 * Build & run:  ./build/heat_solver
 */

#include <iostream>

#include "benchmarks/backend_util.h"
#include "benchmarks/poisson.h"
#include "engine/execution_engine.h"

using namespace petabricks;
using namespace petabricks::apps;

int
main()
{
    const int64_t n = 64;
    const int iterations = 8;
    PoissonBenchmark bench(iterations);
    Rng rng(3);

    tuner::Config config = bench.seedConfig();
    config.selector("Poisson.split.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::Cpu));
    config.selector("Poisson.iterate.backend")
        .setAlgorithm(0, backendAlg(compiler::Backend::OpenClLocal));

    engine::RuntimeEngineOptions options;
    options.workers = 4;
    engine::RuntimeEngine engine(options);

    lang::Binding binding = bench.makeBinding(n, rng);
    MatrixD initial = binding.matrix("In").clone();
    engine::RunResult run =
        engine.runOnBinding(bench, config, n, binding);

    // Residual decrease as a sanity check that SOR is converging.
    auto residual = [](const MatrixD &g) {
        double r = 0.0;
        for (int64_t y = 1; y < g.height() - 1; ++y)
            for (int64_t x = 1; x < g.width() - 1; ++x)
                r += std::abs(4 * g.at(x, y) - g.at(x - 1, y) -
                              g.at(x + 1, y) - g.at(x, y - 1) -
                              g.at(x, y + 1));
        return r;
    };
    std::cout << iterations << " red-black SOR iterations on a " << n
              << "x" << n << " grid\n"
              << "  split on CPU, iterate on GPU (local memory)\n"
              << "  max error vs direct SOR: " << run.maxError << "\n"
              << "  residual: " << residual(initial) << " -> "
              << residual(bench.unpackResult(binding)) << "\n";
    return 0;
}
