/**
 * tunerd — the autotuning service daemon.
 *
 * Hosts many concurrent tuning sessions behind the HTTP command API
 * (see src/service/server.h for the endpoint set and threading
 * contract). Sessions are checkpointed to the spool directory, so a
 * killed daemon restarted on the same spool resumes every search via
 * the `resume` command.
 *
 *   tunerd --port 8617 --spool /var/tmp/tunerd --cap 64 --workers 8
 *
 * `--port 0` binds an ephemeral port; `--port-file PATH` writes the
 * bound port there (after the listener is live), which is how the
 * smoke scripts and tests rendezvous with a daemon they spawned.
 *
 * `--supervise` wraps the daemon in a fork/exec supervisor: the child
 * runs the server, the parent waits, and a crashed child (non-zero
 * exit or signal) is restarted over the same spool/cache/portfolio
 * dirs with bounded exponential backoff. A crash loop (--max-crashes
 * within --crash-window seconds) makes the supervisor give up with a
 * non-zero exit. SIGTERM/SIGINT are forwarded to the child for a
 * graceful drain. `--crash-at` (or PB_CRASH_SCHEDULE) arms the
 * deterministic crash/IO-fault schedule in the *first* child only —
 * restarts run clean, which is what makes supervised crash injection
 * terminate.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "support/crashpoint.h"
#include "support/logging.h"

using namespace petabricks;

namespace {

volatile std::sig_atomic_t signalled = 0;

void
onSignal(int)
{
    signalled = 1;
}

void
usage()
{
    std::cout <<
        "usage: tunerd [options]\n"
        "  --host ADDR        bind address        (default 127.0.0.1)\n"
        "  --port N           TCP port, 0=ephemeral (default 8617)\n"
        "  --port-file PATH   write the bound port to PATH\n"
        "  --spool DIR        checkpoint spool dir (default /tmp/tunerd-spool)\n"
        "  --cap N            max resident sessions (default 64)\n"
        "  --workers N        stepping worker threads (default 4)\n"
        "  --idle-evict SEC   evict sessions idle this long (default 300)\n"
        "  --expire SEC       delete sessions untouched this long (default 0=never)\n"
        "  --sweep SEC        GC sweep interval (default 5)\n"
        "  --queue-depth N    worker queue bound; excess gets 503 (default 128)\n"
        "  --request-deadline SEC  503 commands queued too long (default 0=off)\n"
        "  --cache-dir DIR    persist the shared evaluation cache here and\n"
        "                     warm-start from it at boot (default: memory only)\n"
        "  --cache-bytes N    shared-cache memory bound; 0 disables the\n"
        "                     shared tier entirely (default 64MiB)\n"
        "  --portfolio-dir DIR  persist tuned champions here and serve\n"
        "                     them back across restarts (default: memory only)\n"
        "  --no-fsck          skip spool verification at startup\n"
        "  --no-step-checkpoints  checkpoint per step command, not per generation\n"
        "  --crash-at SPEC    arm the crash/IO-fault schedule, e.g.\n"
        "                     'spool.ckpt.pre_rename=kill' or\n"
        "                     'cache.seg.write@2=enospc' (testing)\n"
        "  --supervise        run under a restarting supervisor\n"
        "  --max-crashes N    crash-loop breaker: give up after N crashes\n"
        "                     within the window (default 5)\n"
        "  --crash-window SEC crash-loop breaker window (default 30)\n"
        "  --restart-count N  (internal) restart ordinal set by the supervisor\n"
        "  --verbose          info-level logging\n"
        "\n"
        "SIGTERM/SIGINT drain gracefully: stop accepting commands,\n"
        "finish in-flight work, checkpoint every session, exit 0.\n";
}

/**
 * The supervisor loop: fork/exec this binary without the supervisor
 * flags, restart it on crashes with exponential backoff, break the
 * loop when crashes cluster, forward TERM/INT for a graceful drain.
 */
int
superviseMain(int argc, char **argv, const std::string &portFile,
              int maxCrashes, int crashWindowSeconds)
{
    // Child argv: this binary minus the supervisor-only flags, plus a
    // --restart-count the server surfaces in /stats. --crash-at (and
    // the env schedule) is kept for the FIRST child only: the point of
    // supervised injection is proving recovery, and recovery means the
    // restarted child must come up clean.
    auto buildChildArgs = [&](int restartCount) {
        std::vector<std::string> args;
        args.push_back(argv[0]);
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--supervise")
                continue;
            if (arg == "--max-crashes" || arg == "--crash-window" ||
                arg == "--restart-count") {
                ++i;
                continue;
            }
            if (arg == "--crash-at") {
                ++i;
                if (restartCount == 0)
                    args.insert(args.end(), {"--crash-at", argv[i]});
                continue;
            }
            args.push_back(arg);
        }
        args.push_back("--restart-count");
        args.push_back(std::to_string(restartCount));
        return args;
    };

    // Explicit sigaction *without* SA_RESTART: waitpid below must be
    // interruptible so a TERM to the supervisor forwards promptly.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    std::deque<std::chrono::steady_clock::time_point> crashes;
    int restartCount = 0;
    int backoffMillis = 200;

    for (;;) {
        // Stale port files must not satisfy the liveness poll below.
        if (!portFile.empty())
            std::remove(portFile.c_str());

        std::vector<std::string> args = buildChildArgs(restartCount);
        pid_t pid = fork();
        if (pid < 0) {
            std::cerr << "tunerd: fork failed: " << std::strerror(errno)
                      << "\n";
            return 1;
        }
        if (pid == 0) {
            if (restartCount > 0) {
                // Belt and braces with the --crash-at stripping above:
                // an inherited env schedule would re-crash every
                // restart and defeat the supervisor.
                unsetenv("PB_CRASH_SCHEDULE");
            }
            std::vector<char *> cargs;
            for (std::string &a : args)
                cargs.push_back(a.data());
            cargs.push_back(nullptr);
            execv(cargs[0], cargs.data());
            std::cerr << "tunerd: exec failed: " << std::strerror(errno)
                      << "\n";
            _exit(127);
        }

        std::cout << "tunerd-supervisor: child " << pid << " started"
                  << " (restart " << restartCount << ")" << std::endl;

        // Probe /healthz before declaring the child live (advisory:
        // backoff reset + log only — a child that crashes before its
        // port file appears is still caught by waitpid below).
        bool declaredLive = false;
        auto liveProbe = [&] {
            if (declaredLive || portFile.empty())
                return;
            FILE *f = std::fopen(portFile.c_str(), "r");
            if (!f)
                return;
            unsigned port = 0;
            bool got = std::fscanf(f, "%u", &port) == 1;
            std::fclose(f);
            if (!got || port == 0)
                return;
            try {
                service::Client probe("127.0.0.1",
                                      static_cast<uint16_t>(port), 2000);
                probe.command("GET", "/healthz");
                declaredLive = true;
                backoffMillis = 200;
                std::cout << "tunerd-supervisor: child " << pid
                          << " is live (healthz ok, port " << port << ")"
                          << std::endl;
            } catch (const std::exception &) {
                // Not up yet (or mid-crash); keep waiting.
            }
        };

        int status = 0;
        for (;;) {
            if (signalled) {
                // Forward for a graceful drain, then keep waiting for
                // the child to finish it.
                kill(pid, SIGTERM);
                signalled = 0;
            }
            pid_t done = waitpid(pid, &status, WNOHANG);
            if (done == pid)
                break;
            liveProbe();
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }

        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            std::cout << "tunerd-supervisor: child exited cleanly"
                      << std::endl;
            return 0;
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 127)
            return 127; // exec itself failed; retrying cannot help

        const auto now = std::chrono::steady_clock::now();
        crashes.push_back(now);
        while (!crashes.empty() &&
               now - crashes.front() >
                   std::chrono::seconds(crashWindowSeconds))
            crashes.pop_front();
        if (static_cast<int>(crashes.size()) >= maxCrashes) {
            std::cerr << "tunerd-supervisor: " << crashes.size()
                      << " crashes within " << crashWindowSeconds
                      << "s, giving up\n";
            return 1;
        }

        if (WIFSIGNALED(status))
            std::cout << "tunerd-supervisor: child killed by signal "
                      << WTERMSIG(status) << ", restarting" << std::endl;
        else
            std::cout << "tunerd-supervisor: child exited with status "
                      << WEXITSTATUS(status) << ", restarting"
                      << std::endl;

        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoffMillis));
        backoffMillis = std::min(backoffMillis * 2, 10000);
        ++restartCount;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions options;
    options.port = 8617;
    options.table.spoolDir = "/tmp/tunerd-spool";
    std::string portFile;
    std::string crashSchedule;
    bool supervise = false;
    int maxCrashes = 5;
    int crashWindowSeconds = 30;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "tunerd: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            options.host = value();
        else if (arg == "--port")
            options.port = static_cast<uint16_t>(std::atoi(value()));
        else if (arg == "--port-file")
            portFile = value();
        else if (arg == "--spool")
            options.table.spoolDir = value();
        else if (arg == "--cap")
            options.table.residentCap =
                static_cast<size_t>(std::atoll(value()));
        else if (arg == "--workers")
            options.workers = std::atoi(value());
        else if (arg == "--idle-evict")
            options.table.idleEvictSeconds = std::atoll(value());
        else if (arg == "--expire")
            options.table.expireSeconds = std::atoll(value());
        else if (arg == "--sweep")
            options.sweepIntervalSeconds = std::atoll(value());
        else if (arg == "--queue-depth")
            options.maxQueueDepth = static_cast<size_t>(std::atoll(value()));
        else if (arg == "--request-deadline")
            options.requestDeadlineSeconds = std::atoll(value());
        else if (arg == "--cache-dir")
            options.cache.dir = value();
        else if (arg == "--cache-bytes")
            options.cache.maxBytes =
                static_cast<size_t>(std::atoll(value()));
        else if (arg == "--portfolio-dir")
            options.portfolioDir = value();
        else if (arg == "--no-fsck") {
            options.table.fsckSpool = false;
            options.cache.fsckOnLoad = false;
            options.portfolioFsck = false;
        }
        else if (arg == "--no-step-checkpoints")
            options.table.checkpointEachStep = false;
        else if (arg == "--crash-at")
            crashSchedule = value();
        else if (arg == "--supervise")
            supervise = true;
        else if (arg == "--max-crashes")
            maxCrashes = std::atoi(value());
        else if (arg == "--crash-window")
            crashWindowSeconds = std::atoi(value());
        else if (arg == "--restart-count")
            options.restartCount = std::atoll(value());
        else if (arg == "--verbose")
            setLogLevel(LogLevel::Info);
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "tunerd: unknown option " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (supervise)
        return superviseMain(argc, argv, portFile, maxCrashes,
                             crashWindowSeconds);

    if (!crashSchedule.empty())
        crashpoint::setSchedule(crashSchedule);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    service::TuningServer server(options);
    server.start();
    std::cout << "tunerd listening on " << options.host << ":"
              << server.port() << " (spool " << options.table.spoolDir
              << ", cap " << options.table.residentCap << ", workers "
              << options.workers << ")" << std::endl;
    if (!portFile.empty()) {
        // Written after the listener is live: whoever polls this file
        // can connect the moment it appears.
        FILE *f = std::fopen(portFile.c_str(), "w");
        if (!f) {
            std::cerr << "tunerd: cannot write " << portFile << "\n";
            return 1;
        }
        std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
        std::fclose(f);
    }

    while (!signalled && !server.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    if (signalled) {
        // Graceful drain: finish what's in flight, flush every session
        // to the spool, then exit 0 — a supervisor's TERM never costs
        // a search more than zero generations of progress.
        std::cout << "tunerd: signal received, draining" << std::endl;
        server.drain();
        std::cout << "tunerd: drained, all sessions checkpointed"
                  << std::endl;
        return 0;
    }

    std::cout << "tunerd: shutting down" << std::endl;
    server.stop();
    return 0;
}
