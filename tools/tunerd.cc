/**
 * tunerd — the autotuning service daemon.
 *
 * Hosts many concurrent tuning sessions behind the HTTP command API
 * (see src/service/server.h for the endpoint set and threading
 * contract). Sessions are checkpointed to the spool directory, so a
 * killed daemon restarted on the same spool resumes every search via
 * the `resume` command.
 *
 *   tunerd --port 8617 --spool /var/tmp/tunerd --cap 64 --workers 8
 *
 * `--port 0` binds an ephemeral port; `--port-file PATH` writes the
 * bound port there (after the listener is live), which is how the
 * smoke scripts and tests rendezvous with a daemon they spawned.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "service/server.h"
#include "support/logging.h"

using namespace petabricks;

namespace {

volatile std::sig_atomic_t signalled = 0;

void
onSignal(int)
{
    signalled = 1;
}

void
usage()
{
    std::cout <<
        "usage: tunerd [options]\n"
        "  --host ADDR        bind address        (default 127.0.0.1)\n"
        "  --port N           TCP port, 0=ephemeral (default 8617)\n"
        "  --port-file PATH   write the bound port to PATH\n"
        "  --spool DIR        checkpoint spool dir (default /tmp/tunerd-spool)\n"
        "  --cap N            max resident sessions (default 64)\n"
        "  --workers N        stepping worker threads (default 4)\n"
        "  --idle-evict SEC   evict sessions idle this long (default 300)\n"
        "  --expire SEC       delete sessions untouched this long (default 0=never)\n"
        "  --sweep SEC        GC sweep interval (default 5)\n"
        "  --queue-depth N    worker queue bound; excess gets 503 (default 128)\n"
        "  --request-deadline SEC  503 commands queued too long (default 0=off)\n"
        "  --cache-dir DIR    persist the shared evaluation cache here and\n"
        "                     warm-start from it at boot (default: memory only)\n"
        "  --cache-bytes N    shared-cache memory bound; 0 disables the\n"
        "                     shared tier entirely (default 64MiB)\n"
        "  --portfolio-dir DIR  persist tuned champions here and serve\n"
        "                     them back across restarts (default: memory only)\n"
        "  --no-fsck          skip spool verification at startup\n"
        "  --no-step-checkpoints  checkpoint per step command, not per generation\n"
        "  --verbose          info-level logging\n"
        "\n"
        "SIGTERM/SIGINT drain gracefully: stop accepting commands,\n"
        "finish in-flight work, checkpoint every session, exit 0.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions options;
    options.port = 8617;
    options.table.spoolDir = "/tmp/tunerd-spool";
    std::string portFile;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "tunerd: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            options.host = value();
        else if (arg == "--port")
            options.port = static_cast<uint16_t>(std::atoi(value()));
        else if (arg == "--port-file")
            portFile = value();
        else if (arg == "--spool")
            options.table.spoolDir = value();
        else if (arg == "--cap")
            options.table.residentCap =
                static_cast<size_t>(std::atoll(value()));
        else if (arg == "--workers")
            options.workers = std::atoi(value());
        else if (arg == "--idle-evict")
            options.table.idleEvictSeconds = std::atoll(value());
        else if (arg == "--expire")
            options.table.expireSeconds = std::atoll(value());
        else if (arg == "--sweep")
            options.sweepIntervalSeconds = std::atoll(value());
        else if (arg == "--queue-depth")
            options.maxQueueDepth = static_cast<size_t>(std::atoll(value()));
        else if (arg == "--request-deadline")
            options.requestDeadlineSeconds = std::atoll(value());
        else if (arg == "--cache-dir")
            options.cache.dir = value();
        else if (arg == "--cache-bytes")
            options.cache.maxBytes =
                static_cast<size_t>(std::atoll(value()));
        else if (arg == "--portfolio-dir")
            options.portfolioDir = value();
        else if (arg == "--no-fsck") {
            options.table.fsckSpool = false;
            options.cache.fsckOnLoad = false;
            options.portfolioFsck = false;
        }
        else if (arg == "--no-step-checkpoints")
            options.table.checkpointEachStep = false;
        else if (arg == "--verbose")
            setLogLevel(LogLevel::Info);
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "tunerd: unknown option " << arg << "\n";
            usage();
            return 2;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    service::TuningServer server(options);
    server.start();
    std::cout << "tunerd listening on " << options.host << ":"
              << server.port() << " (spool " << options.table.spoolDir
              << ", cap " << options.table.residentCap << ", workers "
              << options.workers << ")" << std::endl;
    if (!portFile.empty()) {
        // Written after the listener is live: whoever polls this file
        // can connect the moment it appears.
        FILE *f = std::fopen(portFile.c_str(), "w");
        if (!f) {
            std::cerr << "tunerd: cannot write " << portFile << "\n";
            return 1;
        }
        std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
        std::fclose(f);
    }

    while (!signalled && !server.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    if (signalled) {
        // Graceful drain: finish what's in flight, flush every session
        // to the spool, then exit 0 — a supervisor's TERM never costs
        // a search more than zero generations of progress.
        std::cout << "tunerd: signal received, draining" << std::endl;
        server.drain();
        std::cout << "tunerd: drained, all sessions checkpointed"
                  << std::endl;
        return 0;
    }

    std::cout << "tunerd: shutting down" << std::endl;
    server.stop();
    return 0;
}
