/**
 * pbfsck — inspect and clean the daemon's persistence directories.
 *
 * The spool, the shared-cache segment dir, and the champion portfolio
 * all quarantine torn or corrupt files at boot (rename to
 * `*.quarantine`) instead of deleting them, so wreckage accumulates
 * until an operator looks at it. This tool is that look:
 *
 *   pbfsck list DIR...            every file, classified, quarantines
 *                                 flagged
 *   pbfsck inspect FILE...        dump a quarantined (or any) kv file
 *   pbfsck purge [--temps] DIR... delete quarantine files (and, with
 *                                 --temps, `*.tmp` crash debris)
 *
 * Exit status: `list` exits 1 when any quarantine file exists (so CI
 * and cron can alarm on wreckage), 0 otherwise; `inspect` and `purge`
 * exit non-zero only on usage or I/O errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/fsck.h"

using namespace petabricks;

namespace {

void
usage()
{
    std::cout <<
        "usage: pbfsck <command> [args]\n"
        "  list DIR...             classify every file; exit 1 if any\n"
        "                          *.quarantine files exist\n"
        "  inspect FILE...         print a file's contents with its\n"
        "                          classification\n"
        "  purge [--temps] DIR...  delete *.quarantine files (and *.tmp\n"
        "                          with --temps)\n";
}

int
listDirs(const std::vector<std::string> &dirs)
{
    size_t quarantined = 0;
    for (const std::string &dir : dirs) {
        std::vector<fsck::ScanEntry> entries = fsck::scan(dir);
        std::cout << dir << ": " << entries.size() << " files\n";
        for (const fsck::ScanEntry &entry : entries) {
            std::cout << "  " << entry.path << "  ["
                      << fsck::kindName(entry.kind) << ", " << entry.bytes
                      << " bytes]";
            if (entry.kind == fsck::FileKind::Quarantine) {
                ++quarantined;
                std::cout << "  <-- wreckage";
            }
            std::cout << "\n";
        }
    }
    if (quarantined > 0) {
        std::cout << quarantined << " quarantined file(s) found\n";
        return 1;
    }
    return 0;
}

int
inspectFiles(const std::vector<std::string> &paths)
{
    int rc = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "pbfsck: cannot open " << path << "\n";
            rc = 1;
            continue;
        }
        std::ostringstream content;
        content << in.rdbuf();
        std::cout << "==> " << path << " ["
                  << fsck::kindName(fsck::classify(path)) << ", "
                  << content.str().size() << " bytes]\n"
                  << content.str();
        if (!content.str().empty() && content.str().back() != '\n')
            std::cout << "\n(no trailing newline — torn write?)\n";
    }
    return rc;
}

int
purgeDirs(const std::vector<std::string> &dirs, bool alsoTemps)
{
    size_t total = 0;
    for (const std::string &dir : dirs) {
        size_t removed = fsck::purge(dir, alsoTemps);
        std::cout << dir << ": removed " << removed << " file(s)\n";
        total += removed;
    }
    std::cout << "purged " << total << " file(s) total\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string command = argv[1];
    bool alsoTemps = false;
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--temps")
            alsoTemps = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else
            args.push_back(arg);
    }

    if (command == "--help" || command == "-h") {
        usage();
        return 0;
    }
    if (args.empty()) {
        std::cerr << "pbfsck: " << command << " needs at least one path\n";
        return 2;
    }
    if (command == "list")
        return listDirs(args);
    if (command == "inspect")
        return inspectFiles(args);
    if (command == "purge")
        return purgeDirs(args, alsoTemps);

    std::cerr << "pbfsck: unknown command '" << command << "'\n";
    usage();
    return 2;
}
